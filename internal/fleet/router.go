package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"canary"
	"canary/internal/api"
	"canary/internal/cache"
	"canary/internal/membership"
)

// WorkerState is the router's view of one canaryd node, refreshed by the
// background health checker. The distinction that matters for routing:
// a saturated node is alive and will drain — route to it and let the
// worker's admission retries absorb the wait — while a down node gets
// skipped in the failover walk entirely.
type WorkerState int32

const (
	// WorkerUnknown is the pre-first-probe state; routed optimistically.
	WorkerUnknown WorkerState = iota
	// WorkerUp answers /healthz with admission capacity to spare.
	WorkerUp
	// WorkerSaturated answers /healthz but its queue is full (or it is
	// draining): alive, temporarily rejecting.
	WorkerSaturated
	// WorkerDown does not answer at all.
	WorkerDown
)

func (s WorkerState) String() string {
	switch s {
	case WorkerUp:
		return "up"
	case WorkerSaturated:
		return "saturated"
	case WorkerDown:
		return "down"
	}
	return "unknown"
}

// RouterConfig configures a Router.
type RouterConfig struct {
	// Workers is the static fleet member list: canaryd base URLs. Either
	// Workers or Join must be non-empty.
	Workers []string
	// Join enables dynamic membership instead of a static list: the
	// router gossips with these seed URLs, learns the worker set from
	// the membership protocol, and rebuilds its ring on every change —
	// no restart needed when workers die, rejoin, or scale.
	Join []string
	// Self is the router's advertised base URL, required with Join (it
	// is the router's identity in the gossip protocol).
	Self string
	// GossipInterval, SuspectAfter, DeadAfter tune the membership agent
	// (zero values use the membership defaults).
	GossipInterval time.Duration
	SuspectAfter   time.Duration
	DeadAfter      time.Duration
	// BaseOptions is the analysis option set the router assumes the
	// workers run with; submission options patch it exactly like the
	// daemon patches its own base, so the router computes the same
	// SubmissionKey the worker caches under. A mismatch costs cache
	// locality, never correctness. Zero value means canary defaults.
	BaseOptions *canary.Options
	// MaxRequestBytes bounds an accepted request body (0 = 16 MiB), the
	// same governance knob canaryd has.
	MaxRequestBytes int64
	// MaxAttempts bounds how many workers one submission may be offered
	// to before the router gives up (0 = 3).
	MaxAttempts int
	// RetryBackoff is the base delay between failover attempts, jittered
	// ±50% (0 = 25ms).
	RetryBackoff time.Duration
	// Timeout bounds one upstream call (0 = 5 minutes; analyses can be
	// slow, and the worker's own job timeout is the real governor).
	Timeout time.Duration
	// HealthInterval is the probe period of the background health checker
	// (0 = 1s).
	HealthInterval time.Duration
	// Seed seeds the router's private jitter source (0 = 1). Chaos and
	// smoke runs pin it so backoff schedules are reproducible; a private
	// source also keeps failovers off the global rand lock.
	Seed int64
	// HedgeQuantile, in (0,1), arms hedged requests for single-item
	// submissions: when a forward has been in flight longer than this
	// quantile of recently observed latencies, the same key is fired at
	// the next ring candidate and the first answer wins — safe because
	// results are content-addressed and both tiers dedup in flight.
	// 0 disables hedging. Hedging stays off until enough samples exist.
	HedgeQuantile float64
	// HedgeMinDelay floors the hedge delay (0 = 25ms) so sub-millisecond
	// cache-hit latencies cannot make the router double every request.
	HedgeMinDelay time.Duration
	// BreakerThreshold is how many consecutive failures open a worker's
	// circuit breaker (0 = 3; negative disables breakers).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker blocks routing before
	// a half-open probe is allowed through (0 = 2s).
	BreakerCooldown time.Duration
}

// Router is the stateless fleet front door: it consistent-hashes every
// submission's SubmissionKey across the current workers, forwards to
// the owner, fails over down the ring on worker errors, hedges slow
// single-item calls, and coalesces identical concurrent submissions
// into one upstream call. It holds no durable state — restarting a
// router loses nothing but the in-flight table.
type Router struct {
	cfg  RouterConfig
	base canary.Options
	ring atomic.Pointer[Ring]
	hc   *http.Client

	agent *membership.Agent // nil in static-worker mode

	// inflight coalesces identical concurrent sync submissions (same
	// SubmissionKey) into one upstream call whose response everyone gets.
	inflight      sync.Mutex
	inflightByKey map[cache.Key]*inflightCall

	health sync.Map // worker URL -> WorkerState

	// Per-worker circuit breakers: consecutive hard failures open the
	// breaker, routing skips the worker for a cooldown, then one
	// half-open probe decides. Distinct from the health map: the probe
	// loop samples /healthz on a timer, the breaker reacts to real
	// forwarding traffic immediately.
	breakerMu sync.Mutex
	breakers  map[string]*breaker

	// rng drives backoff jitter; private and seeded for reproducibility.
	rngMu sync.Mutex
	rng   *rand.Rand

	// Latency sampler feeding the hedge delay: a ring buffer of recent
	// successful single-item forward latencies.
	latMu  sync.Mutex
	lats   [64]time.Duration
	latN   int
	latIdx int

	stopOnce sync.Once
	stop     chan struct{}

	// The router_* counters.
	requests      atomic.Uint64 // single-form submissions accepted for routing
	batchRequests atomic.Uint64 // batch envelopes
	items         atomic.Uint64 // items routed (1 per single, N per batch)
	forwards      atomic.Uint64 // upstream POSTs actually sent
	failovers     atomic.Uint64 // attempts beyond the first for one item
	upstreamErrs  atomic.Uint64 // upstream calls that failed (transport or 5xx)
	deduped       atomic.Uint64 // submissions answered by an in-flight duplicate
	exhausted     atomic.Uint64 // items that ran out of failover candidates
	hedges        atomic.Uint64 // hedge attempts launched
	hedgeWins     atomic.Uint64 // hedge attempts that answered first
	breakerOpens  atomic.Uint64 // closed/half-open -> open transitions
}

type inflightCall struct {
	done chan struct{}
	code int
	body []byte
}

// NewRouter builds a router and starts its health checker (and, with
// Join, its membership agent). Close stops both.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Workers) == 0 && len(cfg.Join) == 0 {
		return nil, errors.New("fleet: router needs a worker list or a join seed list")
	}
	if len(cfg.Join) > 0 && cfg.Self == "" {
		return nil, errors.New("fleet: Join requires Self (the router's advertised URL)")
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = 16 << 20
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.HedgeQuantile < 0 || cfg.HedgeQuantile >= 1 {
		return nil, fmt.Errorf("fleet: HedgeQuantile %v outside [0,1)", cfg.HedgeQuantile)
	}
	if cfg.HedgeMinDelay <= 0 {
		cfg.HedgeMinDelay = 25 * time.Millisecond
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	base := canary.DefaultOptions()
	if cfg.BaseOptions != nil {
		base = *cfg.BaseOptions
	}
	rt := &Router{
		cfg:           cfg,
		base:          base,
		hc:            &http.Client{Timeout: cfg.Timeout},
		inflightByKey: make(map[cache.Key]*inflightCall),
		breakers:      make(map[string]*breaker),
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		stop:          make(chan struct{}),
	}
	rt.ring.Store(NewRing(cfg.Workers))
	if len(cfg.Join) == 0 && rt.Ring().Len() == 0 {
		return nil, errors.New("fleet: worker list is empty after deduplication")
	}
	if len(cfg.Join) > 0 {
		agent, err := membership.New(membership.Config{
			Self:         cfg.Self,
			Role:         api.RoleRouter,
			Seeds:        cfg.Join,
			Interval:     cfg.GossipInterval,
			SuspectAfter: cfg.SuspectAfter,
			DeadAfter:    cfg.DeadAfter,
			OnChange: func(ms []membership.Member) {
				rt.SetWorkers(membership.AliveIDs(ms, api.RoleWorker))
			},
		})
		if err != nil {
			return nil, err
		}
		rt.agent = agent
		agent.Start()
	}
	go rt.healthLoop()
	return rt, nil
}

// Close stops the health checker and the membership agent. In-flight
// requests finish normally.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() {
		close(rt.stop)
		if rt.agent != nil {
			rt.agent.Close()
		}
	})
}

// Ring returns the router's current membership view.
func (rt *Router) Ring() *Ring { return rt.ring.Load() }

// Members exposes the membership table (nil in static-worker mode), for
// operators and the chaos harness to watch convergence.
func (rt *Router) Members() []membership.Member {
	if rt.agent == nil {
		return nil
	}
	return rt.agent.Members()
}

// SetWorkers atomically replaces the worker set: a new rendezvous ring,
// with health and breaker state pruned to the members that remain.
// Membership events land here; it is also safe to call directly.
func (rt *Router) SetWorkers(workers []string) {
	ring := NewRing(workers)
	rt.ring.Store(ring)
	keep := make(map[string]bool, ring.Len())
	for _, w := range ring.Nodes() {
		keep[w] = true
	}
	rt.health.Range(func(k, _ any) bool {
		if !keep[k.(string)] {
			rt.health.Delete(k)
		}
		return true
	})
	rt.breakerMu.Lock()
	for w := range rt.breakers {
		if !keep[w] {
			delete(rt.breakers, w)
		}
	}
	rt.breakerMu.Unlock()
}

// --- circuit breakers ---

// BreakerState is one worker's circuit breaker position.
type BreakerState int32

const (
	// BreakerClosed: traffic flows; failures are being counted.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: cooldown expired; probes in flight will decide.
	BreakerHalfOpen
	// BreakerOpen: consecutive failures tripped it; routing skips the
	// worker until the cooldown expires.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "closed"
}

type breaker struct {
	state       BreakerState
	fails       int       // consecutive hard failures
	openedUntil time.Time // end of the current cooldown
}

func (rt *Router) breakerOf(worker string) *breaker {
	rt.breakerMu.Lock()
	defer rt.breakerMu.Unlock()
	b, ok := rt.breakers[worker]
	if !ok {
		b = &breaker{}
		rt.breakers[worker] = b
	}
	return b
}

// breakerBlocked reports whether routing should skip worker right now:
// open, and the cooldown has not yet expired. An expired cooldown does
// not block — the next real request through is the half-open probe.
func (rt *Router) breakerBlocked(worker string) bool {
	if rt.cfg.BreakerThreshold < 0 {
		return false
	}
	rt.breakerMu.Lock()
	defer rt.breakerMu.Unlock()
	b, ok := rt.breakers[worker]
	return ok && b.state == BreakerOpen && time.Now().Before(b.openedUntil)
}

// breakerAttempt marks the start of one forwarding attempt: an open
// breaker whose cooldown expired moves to half-open (this attempt is
// the probe).
func (rt *Router) breakerAttempt(worker string) {
	if rt.cfg.BreakerThreshold < 0 {
		return
	}
	rt.breakerMu.Lock()
	defer rt.breakerMu.Unlock()
	b, ok := rt.breakers[worker]
	if ok && b.state == BreakerOpen && !time.Now().Before(b.openedUntil) {
		b.state = BreakerHalfOpen
	}
}

// breakerSuccess closes the breaker: the worker answered usefully.
func (rt *Router) breakerSuccess(worker string) {
	if rt.cfg.BreakerThreshold < 0 {
		return
	}
	rt.breakerMu.Lock()
	defer rt.breakerMu.Unlock()
	b, ok := rt.breakers[worker]
	if ok {
		b.state = BreakerClosed
		b.fails = 0
	}
}

// breakerFailure records one hard failure (transport error or non-503
// 5xx — a 503 is backpressure, not breakage). A half-open probe failing
// re-opens immediately; a closed breaker opens at the threshold.
func (rt *Router) breakerFailure(worker string) {
	if rt.cfg.BreakerThreshold < 0 {
		return
	}
	rt.breakerMu.Lock()
	defer rt.breakerMu.Unlock()
	b, ok := rt.breakers[worker]
	if !ok {
		b = &breaker{}
		rt.breakers[worker] = b
	}
	b.fails++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.fails >= rt.cfg.BreakerThreshold) {
		b.state = BreakerOpen
		b.openedUntil = time.Now().Add(rt.cfg.BreakerCooldown)
		rt.breakerOpens.Add(1)
	}
}

// BreakerStates returns a point-in-time snapshot keyed by worker URL.
func (rt *Router) BreakerStates() map[string]BreakerState {
	out := make(map[string]BreakerState, rt.Ring().Len())
	rt.breakerMu.Lock()
	defer rt.breakerMu.Unlock()
	for _, w := range rt.Ring().Nodes() {
		if b, ok := rt.breakers[w]; ok {
			out[w] = b.state
		} else {
			out[w] = BreakerClosed
		}
	}
	return out
}

// --- health checking ---

func (rt *Router) healthLoop() {
	rt.probeAll()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, w := range rt.Ring().Nodes() {
		wg.Add(1)
		go func(w string) {
			defer wg.Done()
			rt.health.Store(w, rt.probe(w))
		}(w)
	}
	wg.Wait()
}

// probe classifies one worker. The probe client is short-fused: a health
// check racing a long analysis must not inherit the analysis timeout.
func (rt *Router) probe(worker string) WorkerState {
	hc := &http.Client{Timeout: 2 * time.Second}
	resp, err := hc.Get(worker + "/healthz?format=json")
	if err != nil {
		return WorkerDown
	}
	defer resp.Body.Close()
	var h api.Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); err != nil {
		return WorkerDown
	}
	if h.Status == "draining" || h.Saturated() {
		return WorkerSaturated
	}
	if resp.StatusCode != http.StatusOK {
		return WorkerDown
	}
	return WorkerUp
}

// WorkerStates returns a point-in-time snapshot, sorted by worker URL.
func (rt *Router) WorkerStates() map[string]WorkerState {
	ring := rt.Ring()
	out := make(map[string]WorkerState, ring.Len())
	for _, w := range ring.Nodes() {
		out[w] = WorkerUnknown
		if v, ok := rt.health.Load(w); ok {
			out[w] = v.(WorkerState)
		}
	}
	return out
}

func (rt *Router) stateOf(worker string) WorkerState {
	if v, ok := rt.health.Load(worker); ok {
		return v.(WorkerState)
	}
	return WorkerUnknown
}

// --- routing core ---

// routeKey computes the content address a worker will cache this item
// under: the same options overlay the daemon applies, then SubmissionKey.
func (rt *Router) routeKey(src string, patch *api.OptionsPatch, itemPatch *api.OptionsPatch) cache.Key {
	opt := patch.Apply(rt.base)
	opt = itemPatch.Apply(opt)
	return canary.SubmissionKey(src, opt)
}

// candidates returns the failover order for key: ready workers in ring
// order, then down ones (not dropped: when everything looks down,
// trying anyway beats refusing — the checker may simply be stale), then
// breaker-blocked ones dead last (recent hard evidence, touched only
// when there is nothing else).
func (rt *Router) candidates(key cache.Key) []string {
	reps := rt.Ring().Replicas(key)
	ready := make([]string, 0, len(reps))
	var down, blocked []string
	for _, w := range reps {
		switch {
		case rt.breakerBlocked(w):
			blocked = append(blocked, w)
		case rt.stateOf(w) == WorkerDown:
			down = append(down, w)
		default:
			ready = append(ready, w)
		}
	}
	return append(append(ready, down...), blocked...)
}

var errNoWorkers = errors.New("fleet: no worker answered")

// backoff sleeps one jittered failover delay (base ± 50%), so a burst
// of failovers does not re-slam the next worker in lockstep.
func (rt *Router) backoff(ctx context.Context) error {
	rt.rngMu.Lock()
	jitter := time.Duration(rt.rng.Int63n(int64(rt.cfg.RetryBackoff)))
	rt.rngMu.Unlock()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(rt.cfg.RetryBackoff/2 + jitter):
		return nil
	}
}

// observeLatency feeds the hedge sampler with one successful forward.
func (rt *Router) observeLatency(d time.Duration) {
	rt.latMu.Lock()
	rt.lats[rt.latIdx] = d
	rt.latIdx = (rt.latIdx + 1) % len(rt.lats)
	if rt.latN < len(rt.lats) {
		rt.latN++
	}
	rt.latMu.Unlock()
}

// hedgeDelay returns how long a forward may be in flight before a hedge
// fires at the next candidate, or 0 when hedging is off (unconfigured,
// or not enough samples yet to know what "slow" means).
func (rt *Router) hedgeDelay() time.Duration {
	q := rt.cfg.HedgeQuantile
	if q <= 0 {
		return 0
	}
	rt.latMu.Lock()
	n := rt.latN
	if n < 8 {
		rt.latMu.Unlock()
		return 0
	}
	sample := make([]time.Duration, n)
	copy(sample, rt.lats[:n])
	rt.latMu.Unlock()
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	idx := int(q * float64(n))
	if idx >= n {
		idx = n - 1
	}
	d := sample[idx]
	if d < rt.cfg.HedgeMinDelay {
		d = rt.cfg.HedgeMinDelay
	}
	return d
}

type attemptResult struct {
	worker string
	hedged bool
	code   int
	body   []byte
	err    error
}

// forward offers one single-form submission body to key's candidate
// workers: the owner first, failover down the ring on hard errors with
// jittered backoff, and — once the call has been in flight past the
// hedge delay — a concurrent hedge at the next candidate, first useful
// answer winning. Safe to race: results are content-addressed, and both
// the router and the workers dedup identical in-flight submissions, so
// a hedge can only waste one upstream call, never change bytes. Every
// attempt outcome feeds the worker's circuit breaker. A worker's HTTP
// answer — any status — ends the walk except 503 (queue full /
// draining, backpressure not breakage) and other 5xx, which push on.
func (rt *Router) forward(ctx context.Context, key cache.Key, body []byte) (int, []byte, error) {
	cands := rt.candidates(key)
	if len(cands) > rt.cfg.MaxAttempts {
		cands = cands[:rt.cfg.MaxAttempts]
	}
	if len(cands) == 0 {
		rt.exhausted.Add(1)
		return 0, nil, errNoWorkers
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attemptResult, len(cands))
	next := 0
	launch := func(hedged bool) bool {
		if next >= len(cands) {
			return false
		}
		w := cands[next]
		next++
		rt.breakerAttempt(w)
		go func() {
			code, respBody, err := rt.post(actx, w, body)
			results <- attemptResult{worker: w, hedged: hedged, code: code, body: respBody, err: err}
		}()
		return true
	}
	launch(false)
	pending := 1
	var hedgeC <-chan time.Time
	if d := rt.hedgeDelay(); d > 0 && len(cands) > 1 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		hedgeC = timer.C
	}
	start := time.Now()
	var lastErr error
	for pending > 0 {
		select {
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if launch(true) {
				pending++
				rt.hedges.Add(1)
			}
		case r := <-results:
			pending--
			hardFailure := r.err != nil || (r.code >= 500 && r.code != http.StatusServiceUnavailable)
			retryable := r.err != nil || r.code == http.StatusServiceUnavailable || r.code >= 500
			if !retryable {
				rt.breakerSuccess(r.worker)
				rt.observeLatency(time.Since(start))
				if r.hedged {
					rt.hedgeWins.Add(1)
				}
				return r.code, r.body, nil
			}
			rt.upstreamErrs.Add(1)
			if r.err != nil {
				lastErr = fmt.Errorf("worker %s: %w", r.worker, r.err)
			} else {
				lastErr = fmt.Errorf("worker %s: status %d", r.worker, r.code)
			}
			if hardFailure {
				rt.breakerFailure(r.worker)
			}
			// Sequential failover only once nothing is in flight; a live
			// hedge is already covering this key.
			if pending == 0 && next < len(cands) {
				rt.failovers.Add(1)
				if err := rt.backoff(ctx); err != nil {
					return 0, nil, err
				}
				launch(false)
				pending++
			}
		}
	}
	rt.exhausted.Add(1)
	if lastErr == nil {
		lastErr = errNoWorkers
	}
	return 0, nil, lastErr
}

func (rt *Router) post(ctx context.Context, worker string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		worker+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	rt.forwards.Add(1)
	resp, err := rt.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, MaxPeerEntryBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// forwardDeduped wraps forward with the router-side in-flight table:
// identical concurrent submissions (same SubmissionKey) share one
// upstream call and all read its response. Only terminal responses are
// shared; a failed walk is not cached, so a follower retrying later
// starts fresh.
func (rt *Router) forwardDeduped(ctx context.Context, key cache.Key, body []byte) (int, []byte, error) {
	rt.inflight.Lock()
	if c, ok := rt.inflightByKey[key]; ok {
		rt.inflight.Unlock()
		rt.deduped.Add(1)
		select {
		case <-c.done:
			return c.code, c.body, nil
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		}
	}
	c := &inflightCall{done: make(chan struct{})}
	rt.inflightByKey[key] = c
	rt.inflight.Unlock()

	code, respBody, err := rt.forward(ctx, key, body)

	rt.inflight.Lock()
	delete(rt.inflightByKey, key)
	rt.inflight.Unlock()
	if err != nil {
		// Leave the call unshared: followers blocked on done would have no
		// response to read. They re-enter and route for themselves.
		close(c.done)
		return 0, nil, err
	}
	c.code, c.body = code, respBody
	close(c.done)
	return code, respBody, nil
}

// A follower that woke on done with a zero code means the leader failed
// after we joined; detect and re-route.
func (rt *Router) forwardShared(ctx context.Context, key cache.Key, body []byte) (int, []byte, error) {
	for tries := 0; tries < 2; tries++ {
		code, respBody, err := rt.forwardDeduped(ctx, key, body)
		if err != nil {
			return 0, nil, err
		}
		if code != 0 {
			return code, respBody, nil
		}
	}
	return 0, nil, errNoWorkers
}

// --- HTTP surface ---

// Handler returns the router's HTTP API — the same /v1/analyze contract
// canaryd serves (single and batch forms), plus the router's own
// /healthz and /metrics, and (with Join) the membership gossip
// endpoint. Async submissions are refused: a job ID is meaningful only
// on the worker that issued it, and a stateless router keeps no
// affinity to resolve one.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", rt.handleAnalyze)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	if rt.agent != nil {
		mux.HandleFunc("/v1/gossip", rt.agent.ServeGossip)
	}
	return mux
}

func (rt *Router) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxRequestBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSONError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
			return
		}
		writeJSONError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	req, err := api.ParseAnalyzeRequest(body)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Async {
		writeJSONError(w, http.StatusBadRequest,
			"async submissions are not routable; submit directly to a worker")
		return
	}
	if rt.Ring().Len() == 0 {
		// Dynamic membership and no workers known (yet): refuse with a
		// backoff hint rather than hanging or panicking.
		writeJSONError(w, http.StatusServiceUnavailable, "no fleet members known")
		return
	}
	if len(req.Items) > 0 {
		rt.handleBatch(w, r, req)
		return
	}

	rt.requests.Add(1)
	rt.items.Add(1)
	key := rt.routeKey(req.Source, req.Options, nil)
	code, respBody, err := rt.forwardShared(r.Context(), key, body)
	if err != nil {
		writeJSONError(w, http.StatusBadGateway, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(respBody)
}

// handleBatch fans a batch out to the owners of its items: items are
// grouped by owner, one upstream batch POST per worker, per-item
// responses reassembled in request order. A worker whose whole call
// fails gets its items re-routed individually through the failover walk,
// so one down worker degrades to slower placement, not lost items.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request, req *api.AnalyzeRequest) {
	rt.batchRequests.Add(1)
	rt.items.Add(uint64(len(req.Items)))

	type routedItem struct {
		idx int
		key cache.Key
	}
	groups := make(map[string][]routedItem)
	for i := range req.Items {
		it := &req.Items[i]
		key := rt.routeKey(it.Source, req.Options, it.Options)
		owner := ""
		if cands := rt.candidates(key); len(cands) > 0 {
			owner = cands[0]
		}
		groups[owner] = append(groups[owner], routedItem{idx: i, key: key})
	}

	resp := api.BatchResponse{Items: make([]api.JobResponse, len(req.Items))}
	var wg sync.WaitGroup
	for owner, group := range groups {
		wg.Add(1)
		go func(owner string, group []routedItem) {
			defer wg.Done()
			sub := api.AnalyzeRequest{
				Options: req.Options,
				Items:   make([]api.AnalyzeItem, len(group)),
			}
			for j, g := range group {
				sub.Items[j] = req.Items[g.idx]
			}
			subBody, err := json.Marshal(sub)
			if err == nil && owner != "" {
				code, respBody, postErr := rt.post(r.Context(), owner, subBody)
				if postErr == nil && code == http.StatusOK {
					var br api.BatchResponse
					if json.Unmarshal(respBody, &br) == nil && len(br.Items) == len(group) {
						for j, g := range group {
							resp.Items[g.idx] = br.Items[j]
						}
						return
					}
				}
				if postErr != nil || code >= 500 {
					rt.upstreamErrs.Add(1)
				}
			}
			// The grouped call failed as a whole (or no owner was known):
			// re-route each item alone so the failover walk can place it.
			for j, g := range group {
				resp.Items[g.idx] = rt.routeSingle(r.Context(), g.key, sub.Items[j], req.Options)
			}
		}(owner, group)
	}
	wg.Wait()
	resp.Tally()
	writeJSONBody(w, http.StatusOK, resp)
}

// routeSingle re-routes one batch item through the deduped failover walk
// as a batch of one — the batch form keeps the envelope/item options
// layering intact, so the worker lands it under the same content address
// the router computed.
func (rt *Router) routeSingle(ctx context.Context, key cache.Key, it api.AnalyzeItem, patch *api.OptionsPatch) api.JobResponse {
	body, err := json.Marshal(api.AnalyzeRequest{
		Options: patch,
		Items:   []api.AnalyzeItem{it},
	})
	if err != nil {
		return api.JobResponse{Status: "failed", Error: err.Error()}
	}
	code, respBody, err := rt.forwardShared(ctx, key, body)
	if err != nil {
		return api.JobResponse{Status: "failed", Error: err.Error()}
	}
	var br api.BatchResponse
	if err := json.Unmarshal(respBody, &br); err != nil || len(br.Items) != 1 {
		return api.JobResponse{Status: "failed",
			Error: fmt.Sprintf("unparseable worker response (status %d)", code)}
	}
	return br.Items[0]
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	states := rt.WorkerStates()
	up := 0
	for _, s := range states {
		if s != WorkerDown {
			up++
		}
	}
	status := "ok"
	code := http.StatusOK
	if up == 0 {
		status = "no-workers"
		code = http.StatusServiceUnavailable
	}
	if r.URL.Query().Get("format") == "json" {
		type workerReport struct {
			URL     string `json:"url"`
			State   string `json:"state"`
			Breaker string `json:"breaker"`
		}
		report := struct {
			Status  string         `json:"status"`
			Members int            `json:"members,omitempty"`
			Workers []workerReport `json:"workers"`
		}{Status: status}
		if rt.agent != nil {
			report.Members = len(membership.AliveIDs(rt.agent.Members(), ""))
		}
		breakers := rt.BreakerStates()
		for _, u := range rt.Ring().Nodes() {
			report.Workers = append(report.Workers, workerReport{
				URL: u, State: states[u].String(), Breaker: breakers[u].String(),
			})
		}
		writeJSONBody(w, code, report)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	fmt.Fprintln(w, status)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "router_requests_total %d\n", rt.requests.Load())
	fmt.Fprintf(w, "router_batch_requests_total %d\n", rt.batchRequests.Load())
	fmt.Fprintf(w, "router_items_total %d\n", rt.items.Load())
	fmt.Fprintf(w, "router_forwards_total %d\n", rt.forwards.Load())
	fmt.Fprintf(w, "router_failovers_total %d\n", rt.failovers.Load())
	fmt.Fprintf(w, "router_upstream_errors_total %d\n", rt.upstreamErrs.Load())
	fmt.Fprintf(w, "router_deduped_total %d\n", rt.deduped.Load())
	fmt.Fprintf(w, "router_exhausted_total %d\n", rt.exhausted.Load())
	fmt.Fprintf(w, "router_hedges_total %d\n", rt.hedges.Load())
	fmt.Fprintf(w, "router_hedge_wins_total %d\n", rt.hedgeWins.Load())
	fmt.Fprintf(w, "router_breaker_opens_total %d\n", rt.breakerOpens.Load())
	fmt.Fprintf(w, "router_workers %d\n", rt.Ring().Len())
	states := rt.WorkerStates()
	breakers := rt.BreakerStates()
	workers := rt.Ring().Nodes()
	sort.Strings(workers)
	byState := map[WorkerState]int{}
	for _, u := range workers {
		s := states[u]
		byState[s]++
		upVal := 0
		if s == WorkerUp || s == WorkerUnknown {
			upVal = 1
		}
		fmt.Fprintf(w, "router_worker_up{worker=%q} %d\n", u, upVal)
		fmt.Fprintf(w, "router_breaker_state{worker=%q} %d\n", u, int(breakers[u]))
	}
	fmt.Fprintf(w, "router_workers_up %d\n", byState[WorkerUp])
	fmt.Fprintf(w, "router_workers_saturated %d\n", byState[WorkerSaturated])
	fmt.Fprintf(w, "router_workers_down %d\n", byState[WorkerDown])
	if rt.agent != nil {
		ms := rt.agent.Stats()
		fmt.Fprintf(w, "router_gossip_rounds_total %d\n", ms.Rounds)
		fmt.Fprintf(w, "router_gossip_send_errors_total %d\n", ms.SendErrors)
		fmt.Fprintf(w, "router_members_alive %d\n", ms.Alive)
		fmt.Fprintf(w, "router_members_suspect %d\n", ms.Suspect)
		fmt.Fprintf(w, "router_members_dead %d\n", ms.Dead)
	}
}

// RouterStats is a point-in-time snapshot of the router counters, for
// the bench harness.
type RouterStats struct {
	Requests      uint64 `json:"requests"`
	BatchRequests uint64 `json:"batch_requests"`
	Items         uint64 `json:"items"`
	Forwards      uint64 `json:"forwards"`
	Failovers     uint64 `json:"failovers"`
	UpstreamErrs  uint64 `json:"upstream_errors"`
	Deduped       uint64 `json:"deduped"`
	Exhausted     uint64 `json:"exhausted"`
	Hedges        uint64 `json:"hedges"`
	HedgeWins     uint64 `json:"hedge_wins"`
	BreakerOpens  uint64 `json:"breaker_opens"`
}

// Stats returns the cumulative counters.
func (rt *Router) Stats() RouterStats {
	return RouterStats{
		Requests:      rt.requests.Load(),
		BatchRequests: rt.batchRequests.Load(),
		Items:         rt.items.Load(),
		Forwards:      rt.forwards.Load(),
		Failovers:     rt.failovers.Load(),
		UpstreamErrs:  rt.upstreamErrs.Load(),
		Deduped:       rt.deduped.Load(),
		Exhausted:     rt.exhausted.Load(),
		Hedges:        rt.hedges.Load(),
		HedgeWins:     rt.hedgeWins.Load(),
		BreakerOpens:  rt.breakerOpens.Load(),
	}
}

func writeJSONBody(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

// writeJSONError emits the router's typed JSON error envelope. 502/503
// responses carry a Retry-After hint, mirroring canaryd's queue-full
// path, so clients back off instead of hammering a struggling fleet.
func writeJSONError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	if status == http.StatusBadGateway || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSONBody(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
