package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"canary"
	"canary/internal/api"
	"canary/internal/cache"
)

// WorkerState is the router's view of one canaryd node, refreshed by the
// background health checker. The distinction that matters for routing:
// a saturated node is alive and will drain — route to it and let the
// worker's admission retries absorb the wait — while a down node gets
// skipped in the failover walk entirely.
type WorkerState int32

const (
	// WorkerUnknown is the pre-first-probe state; routed optimistically.
	WorkerUnknown WorkerState = iota
	// WorkerUp answers /healthz with admission capacity to spare.
	WorkerUp
	// WorkerSaturated answers /healthz but its queue is full (or it is
	// draining): alive, temporarily rejecting.
	WorkerSaturated
	// WorkerDown does not answer at all.
	WorkerDown
)

func (s WorkerState) String() string {
	switch s {
	case WorkerUp:
		return "up"
	case WorkerSaturated:
		return "saturated"
	case WorkerDown:
		return "down"
	}
	return "unknown"
}

// RouterConfig configures a Router.
type RouterConfig struct {
	// Workers is the fleet member list: canaryd base URLs. Required,
	// non-empty.
	Workers []string
	// BaseOptions is the analysis option set the router assumes the
	// workers run with; submission options patch it exactly like the
	// daemon patches its own base, so the router computes the same
	// SubmissionKey the worker caches under. A mismatch costs cache
	// locality, never correctness. Zero value means canary defaults.
	BaseOptions *canary.Options
	// MaxRequestBytes bounds an accepted request body (0 = 16 MiB), the
	// same governance knob canaryd has.
	MaxRequestBytes int64
	// MaxAttempts bounds how many workers one submission may be offered
	// to before the router gives up (0 = min(3, len(Workers))).
	MaxAttempts int
	// RetryBackoff is the base delay between failover attempts, jittered
	// ±50% (0 = 25ms).
	RetryBackoff time.Duration
	// Timeout bounds one upstream call (0 = 5 minutes; analyses can be
	// slow, and the worker's own job timeout is the real governor).
	Timeout time.Duration
	// HealthInterval is the probe period of the background health checker
	// (0 = 1s).
	HealthInterval time.Duration
}

// Router is the stateless fleet front door: it consistent-hashes every
// submission's SubmissionKey across the configured workers, forwards to
// the owner, fails over down the ring on worker errors, and coalesces
// identical concurrent submissions into one upstream call. It holds no
// durable state — restarting a router loses nothing but the in-flight
// table.
type Router struct {
	cfg  RouterConfig
	base canary.Options
	ring *Ring
	hc   *http.Client

	// inflight coalesces identical concurrent sync submissions (same
	// SubmissionKey) into one upstream call whose response everyone gets.
	inflight      sync.Mutex
	inflightByKey map[cache.Key]*inflightCall

	health sync.Map // worker URL -> WorkerState

	stopOnce sync.Once
	stop     chan struct{}

	// The router_* counters.
	requests      atomic.Uint64 // single-form submissions accepted for routing
	batchRequests atomic.Uint64 // batch envelopes
	items         atomic.Uint64 // items routed (1 per single, N per batch)
	forwards      atomic.Uint64 // upstream POSTs actually sent
	failovers     atomic.Uint64 // attempts beyond the first for one item
	upstreamErrs  atomic.Uint64 // upstream calls that failed (transport or 5xx)
	deduped       atomic.Uint64 // submissions answered by an in-flight duplicate
	exhausted     atomic.Uint64 // items that ran out of failover candidates
}

type inflightCall struct {
	done chan struct{}
	code int
	body []byte
}

// NewRouter builds a router and starts its health checker. Close stops it.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: router needs at least one worker")
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = 16 << 20
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	base := canary.DefaultOptions()
	if cfg.BaseOptions != nil {
		base = *cfg.BaseOptions
	}
	rt := &Router{
		cfg:           cfg,
		base:          base,
		ring:          NewRing(cfg.Workers),
		hc:            &http.Client{Timeout: cfg.Timeout},
		inflightByKey: make(map[cache.Key]*inflightCall),
		stop:          make(chan struct{}),
	}
	if rt.ring.Len() == 0 {
		return nil, errors.New("fleet: worker list is empty after deduplication")
	}
	go rt.healthLoop()
	return rt, nil
}

// Close stops the health checker. In-flight requests finish normally.
func (rt *Router) Close() { rt.stopOnce.Do(func() { close(rt.stop) }) }

// Ring returns the router's membership view.
func (rt *Router) Ring() *Ring { return rt.ring }

// --- health checking ---

func (rt *Router) healthLoop() {
	rt.probeAll()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, w := range rt.ring.Nodes() {
		wg.Add(1)
		go func(w string) {
			defer wg.Done()
			rt.health.Store(w, rt.probe(w))
		}(w)
	}
	wg.Wait()
}

// probe classifies one worker. The probe client is short-fused: a health
// check racing a long analysis must not inherit the analysis timeout.
func (rt *Router) probe(worker string) WorkerState {
	hc := &http.Client{Timeout: 2 * time.Second}
	resp, err := hc.Get(worker + "/healthz?format=json")
	if err != nil {
		return WorkerDown
	}
	defer resp.Body.Close()
	var h api.Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); err != nil {
		return WorkerDown
	}
	if h.Status == "draining" || h.Saturated() {
		return WorkerSaturated
	}
	if resp.StatusCode != http.StatusOK {
		return WorkerDown
	}
	return WorkerUp
}

// WorkerStates returns a point-in-time snapshot, sorted by worker URL.
func (rt *Router) WorkerStates() map[string]WorkerState {
	out := make(map[string]WorkerState, rt.ring.Len())
	for _, w := range rt.ring.Nodes() {
		out[w] = WorkerUnknown
		if v, ok := rt.health.Load(w); ok {
			out[w] = v.(WorkerState)
		}
	}
	return out
}

func (rt *Router) stateOf(worker string) WorkerState {
	if v, ok := rt.health.Load(worker); ok {
		return v.(WorkerState)
	}
	return WorkerUnknown
}

// --- routing core ---

// routeKey computes the content address a worker will cache this item
// under: the same options overlay the daemon applies, then SubmissionKey.
func (rt *Router) routeKey(src string, patch *api.OptionsPatch, itemPatch *api.OptionsPatch) cache.Key {
	opt := patch.Apply(rt.base)
	opt = itemPatch.Apply(opt)
	return canary.SubmissionKey(src, opt)
}

// candidates returns the failover order for key with down workers moved
// to the back (not dropped: when everything looks down, trying anyway
// beats refusing — the checker may simply be stale).
func (rt *Router) candidates(key cache.Key) []string {
	reps := rt.ring.Replicas(key)
	alive := make([]string, 0, len(reps))
	down := reps[:0:0]
	for _, w := range reps {
		if rt.stateOf(w) == WorkerDown {
			down = append(down, w)
		} else {
			alive = append(alive, w)
		}
	}
	return append(alive, down...)
}

var errNoWorkers = errors.New("fleet: no worker answered")

// forward offers one single-form submission body to key's candidate
// workers in ring order: bounded attempts, jittered backoff between
// them, each failure recorded. A worker's HTTP answer — any status —
// ends the walk except 503 (queue full / draining) and 5xx transport-ish
// failures, which push on to the next candidate.
func (rt *Router) forward(ctx context.Context, key cache.Key, body []byte) (int, []byte, error) {
	cands := rt.candidates(key)
	if len(cands) > rt.cfg.MaxAttempts {
		cands = cands[:rt.cfg.MaxAttempts]
	}
	var lastErr error
	for i, w := range cands {
		if i > 0 {
			rt.failovers.Add(1)
			// Jittered backoff: base ± 50%, so a burst of failovers does
			// not re-slam the next worker in lockstep.
			d := rt.cfg.RetryBackoff/2 + time.Duration(rand.Int63n(int64(rt.cfg.RetryBackoff)))
			select {
			case <-ctx.Done():
				return 0, nil, ctx.Err()
			case <-time.After(d):
			}
		}
		code, respBody, err := rt.post(ctx, w, body)
		if err != nil {
			rt.upstreamErrs.Add(1)
			lastErr = fmt.Errorf("worker %s: %w", w, err)
			continue
		}
		if code == http.StatusServiceUnavailable || code >= 500 {
			rt.upstreamErrs.Add(1)
			lastErr = fmt.Errorf("worker %s: status %d", w, code)
			continue
		}
		return code, respBody, nil
	}
	rt.exhausted.Add(1)
	if lastErr == nil {
		lastErr = errNoWorkers
	}
	return 0, nil, lastErr
}

func (rt *Router) post(ctx context.Context, worker string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		worker+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	rt.forwards.Add(1)
	resp, err := rt.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, MaxPeerEntryBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// forwardDeduped wraps forward with the router-side in-flight table:
// identical concurrent submissions (same SubmissionKey) share one
// upstream call and all read its response. Only terminal responses are
// shared; a failed walk is not cached, so a follower retrying later
// starts fresh.
func (rt *Router) forwardDeduped(ctx context.Context, key cache.Key, body []byte) (int, []byte, error) {
	rt.inflight.Lock()
	if c, ok := rt.inflightByKey[key]; ok {
		rt.inflight.Unlock()
		rt.deduped.Add(1)
		select {
		case <-c.done:
			return c.code, c.body, nil
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		}
	}
	c := &inflightCall{done: make(chan struct{})}
	rt.inflightByKey[key] = c
	rt.inflight.Unlock()

	code, respBody, err := rt.forward(ctx, key, body)

	rt.inflight.Lock()
	delete(rt.inflightByKey, key)
	rt.inflight.Unlock()
	if err != nil {
		// Leave the call unshared: followers blocked on done would have no
		// response to read. They re-enter and route for themselves.
		close(c.done)
		return 0, nil, err
	}
	c.code, c.body = code, respBody
	close(c.done)
	return code, respBody, nil
}

// A follower that woke on done with a zero code means the leader failed
// after we joined; detect and re-route.
func (rt *Router) forwardShared(ctx context.Context, key cache.Key, body []byte) (int, []byte, error) {
	for tries := 0; tries < 2; tries++ {
		code, respBody, err := rt.forwardDeduped(ctx, key, body)
		if err != nil {
			return 0, nil, err
		}
		if code != 0 {
			return code, respBody, nil
		}
	}
	return 0, nil, errNoWorkers
}

// --- HTTP surface ---

// Handler returns the router's HTTP API — the same /v1/analyze contract
// canaryd serves (single and batch forms), plus the router's own
// /healthz and /metrics. Async submissions are refused: a job ID is
// meaningful only on the worker that issued it, and a stateless router
// keeps no affinity to resolve one.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", rt.handleAnalyze)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

func (rt *Router) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxRequestBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSONError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
			return
		}
		writeJSONError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	req, err := api.ParseAnalyzeRequest(body)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Async {
		writeJSONError(w, http.StatusBadRequest,
			"async submissions are not routable; submit directly to a worker")
		return
	}
	if len(req.Items) > 0 {
		rt.handleBatch(w, r, req)
		return
	}

	rt.requests.Add(1)
	rt.items.Add(1)
	key := rt.routeKey(req.Source, req.Options, nil)
	code, respBody, err := rt.forwardShared(r.Context(), key, body)
	if err != nil {
		writeJSONError(w, http.StatusBadGateway, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(respBody)
}

// handleBatch fans a batch out to the owners of its items: items are
// grouped by owner, one upstream batch POST per worker, per-item
// responses reassembled in request order. A worker whose whole call
// fails gets its items re-routed individually through the failover walk,
// so one down worker degrades to slower placement, not lost items.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request, req *api.AnalyzeRequest) {
	rt.batchRequests.Add(1)
	rt.items.Add(uint64(len(req.Items)))

	type routedItem struct {
		idx int
		key cache.Key
	}
	groups := make(map[string][]routedItem)
	for i := range req.Items {
		it := &req.Items[i]
		key := rt.routeKey(it.Source, req.Options, it.Options)
		owner := rt.candidates(key)[0]
		groups[owner] = append(groups[owner], routedItem{idx: i, key: key})
	}

	resp := api.BatchResponse{Items: make([]api.JobResponse, len(req.Items))}
	var wg sync.WaitGroup
	for owner, group := range groups {
		wg.Add(1)
		go func(owner string, group []routedItem) {
			defer wg.Done()
			sub := api.AnalyzeRequest{
				Options: req.Options,
				Items:   make([]api.AnalyzeItem, len(group)),
			}
			for j, g := range group {
				sub.Items[j] = req.Items[g.idx]
			}
			subBody, err := json.Marshal(sub)
			if err == nil {
				code, respBody, postErr := rt.post(r.Context(), owner, subBody)
				if postErr == nil && code == http.StatusOK {
					var br api.BatchResponse
					if json.Unmarshal(respBody, &br) == nil && len(br.Items) == len(group) {
						for j, g := range group {
							resp.Items[g.idx] = br.Items[j]
						}
						return
					}
				}
				if postErr != nil || code >= 500 {
					rt.upstreamErrs.Add(1)
				}
			}
			// The grouped call failed as a whole: re-route each item alone so
			// the failover walk can place it elsewhere.
			for j, g := range group {
				resp.Items[g.idx] = rt.routeSingle(r.Context(), g.key, sub.Items[j], req.Options)
			}
		}(owner, group)
	}
	wg.Wait()
	resp.Tally()
	writeJSONBody(w, http.StatusOK, resp)
}

// routeSingle re-routes one batch item through the deduped failover walk
// as a batch of one — the batch form keeps the envelope/item options
// layering intact, so the worker lands it under the same content address
// the router computed.
func (rt *Router) routeSingle(ctx context.Context, key cache.Key, it api.AnalyzeItem, patch *api.OptionsPatch) api.JobResponse {
	body, err := json.Marshal(api.AnalyzeRequest{
		Options: patch,
		Items:   []api.AnalyzeItem{it},
	})
	if err != nil {
		return api.JobResponse{Status: "failed", Error: err.Error()}
	}
	code, respBody, err := rt.forwardShared(ctx, key, body)
	if err != nil {
		return api.JobResponse{Status: "failed", Error: err.Error()}
	}
	var br api.BatchResponse
	if err := json.Unmarshal(respBody, &br); err != nil || len(br.Items) != 1 {
		return api.JobResponse{Status: "failed",
			Error: fmt.Sprintf("unparseable worker response (status %d)", code)}
	}
	return br.Items[0]
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	states := rt.WorkerStates()
	up := 0
	for _, s := range states {
		if s != WorkerDown {
			up++
		}
	}
	status := "ok"
	code := http.StatusOK
	if up == 0 {
		status = "no-workers"
		code = http.StatusServiceUnavailable
	}
	if r.URL.Query().Get("format") == "json" {
		type workerReport struct {
			URL   string `json:"url"`
			State string `json:"state"`
		}
		report := struct {
			Status  string         `json:"status"`
			Workers []workerReport `json:"workers"`
		}{Status: status}
		for _, u := range rt.ring.Nodes() {
			report.Workers = append(report.Workers, workerReport{URL: u, State: states[u].String()})
		}
		writeJSONBody(w, code, report)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	fmt.Fprintln(w, status)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "router_requests_total %d\n", rt.requests.Load())
	fmt.Fprintf(w, "router_batch_requests_total %d\n", rt.batchRequests.Load())
	fmt.Fprintf(w, "router_items_total %d\n", rt.items.Load())
	fmt.Fprintf(w, "router_forwards_total %d\n", rt.forwards.Load())
	fmt.Fprintf(w, "router_failovers_total %d\n", rt.failovers.Load())
	fmt.Fprintf(w, "router_upstream_errors_total %d\n", rt.upstreamErrs.Load())
	fmt.Fprintf(w, "router_deduped_total %d\n", rt.deduped.Load())
	fmt.Fprintf(w, "router_exhausted_total %d\n", rt.exhausted.Load())
	fmt.Fprintf(w, "router_workers %d\n", rt.ring.Len())
	states := rt.WorkerStates()
	workers := rt.ring.Nodes()
	sort.Strings(workers)
	byState := map[WorkerState]int{}
	for _, u := range workers {
		s := states[u]
		byState[s]++
		upVal := 0
		if s == WorkerUp || s == WorkerUnknown {
			upVal = 1
		}
		fmt.Fprintf(w, "router_worker_up{worker=%q} %d\n", u, upVal)
	}
	fmt.Fprintf(w, "router_workers_up %d\n", byState[WorkerUp])
	fmt.Fprintf(w, "router_workers_saturated %d\n", byState[WorkerSaturated])
	fmt.Fprintf(w, "router_workers_down %d\n", byState[WorkerDown])
}

// RouterStats is a point-in-time snapshot of the router counters, for
// the bench harness.
type RouterStats struct {
	Requests      uint64 `json:"requests"`
	BatchRequests uint64 `json:"batch_requests"`
	Items         uint64 `json:"items"`
	Forwards      uint64 `json:"forwards"`
	Failovers     uint64 `json:"failovers"`
	UpstreamErrs  uint64 `json:"upstream_errors"`
	Deduped       uint64 `json:"deduped"`
	Exhausted     uint64 `json:"exhausted"`
}

// Stats returns the cumulative counters.
func (rt *Router) Stats() RouterStats {
	return RouterStats{
		Requests:      rt.requests.Load(),
		BatchRequests: rt.batchRequests.Load(),
		Items:         rt.items.Load(),
		Forwards:      rt.forwards.Load(),
		Failovers:     rt.failovers.Load(),
		UpstreamErrs:  rt.upstreamErrs.Load(),
		Deduped:       rt.deduped.Load(),
		Exhausted:     rt.exhausted.Load(),
	}
}

func writeJSONBody(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func writeJSONError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSONBody(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
