package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"canary"
	"canary/internal/api"
	"canary/internal/fleet"
	"canary/internal/server"
)

const buggySrc = `
func main() {
  x = malloc();
  fork(t, worker, x);
  c = *x;
  print(*c);
}
func worker(y) {
  b = malloc();
  *y = b;
  free(b);
}
`

// newWorker starts a real in-process canaryd server.
func newWorker(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("worker shutdown: %v", err)
		}
	})
	return s, ts
}

func newRouter(t *testing.T, cfg fleet.RouterConfig) (*fleet.Router, *httptest.Server) {
	t.Helper()
	rt, err := fleet.NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return rt, ts
}

func post(t *testing.T, url string, v interface{}) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// reportsOf extracts the findings from a serialized result — the part of
// the output the determinism contract pins byte-for-byte (timings vary).
func reportsOf(t *testing.T, result json.RawMessage) string {
	t.Helper()
	var m struct {
		Reports json.RawMessage `json:"Reports"`
	}
	if err := json.Unmarshal(result, &m); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, m.Reports); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestRouterForwardsAndAgreesWithDirect routes one submission through a
// two-worker fleet and checks the findings equal a direct library run:
// routing must be invisible in the output.
func TestRouterForwardsAndAgreesWithDirect(t *testing.T) {
	_, w1 := newWorker(t, server.Config{})
	_, w2 := newWorker(t, server.Config{})
	rt, ts := newRouter(t, fleet.RouterConfig{Workers: []string{w1.URL, w2.URL}})

	code, body := post(t, ts.URL, api.AnalyzeRequest{Source: buggySrc})
	if code != http.StatusOK {
		t.Fatalf("routed submission = %d: %s", code, body)
	}
	var jr api.JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Status != "done" {
		t.Fatalf("routed job = %+v", jr)
	}

	res, err := canary.Analyze(buggySrc, canary.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if reportsOf(t, jr.Result) != reportsOf(t, direct) {
		t.Fatalf("routed findings differ from a direct library run:\nrouted: %s\ndirect: %s", reportsOf(t, jr.Result), reportsOf(t, direct))
	}

	// A repeat routes to the same owner and hits its cache.
	code, body = post(t, ts.URL, api.AnalyzeRequest{Source: buggySrc})
	var warm api.JobResponse
	if code != http.StatusOK || json.Unmarshal(body, &warm) != nil {
		t.Fatalf("warm repeat = %d", code)
	}
	if !warm.Cached {
		t.Fatal("repeat through the router should hit the owner's cache")
	}
	if got := rt.Stats(); got.Requests != 2 || got.Exhausted != 0 {
		t.Fatalf("router stats = %+v", got)
	}
}

// TestRouterBatchFanout sends a batch through two workers and checks
// per-item results come back in request order with the owner split the
// ring dictates.
func TestRouterBatchFanout(t *testing.T) {
	sA, w1 := newWorker(t, server.Config{})
	sB, w2 := newWorker(t, server.Config{})
	rt, ts := newRouter(t, fleet.RouterConfig{Workers: []string{w1.URL, w2.URL}})

	items := make([]api.AnalyzeItem, 6)
	wantKeys := make([]string, len(items))
	ownerCount := map[string]int{}
	for i := range items {
		src := fmt.Sprintf("%s\nfunc pad%d() { p = malloc(); }", buggySrc, i)
		items[i] = api.AnalyzeItem{Source: src}
		key := canary.SubmissionKey(src, canary.DefaultOptions())
		wantKeys[i] = fmt.Sprintf("%x", key)
		ownerCount[rt.Ring().Owner(key)]++
	}
	// The corpus is big enough that both workers should own something;
	// if not, the test would silently cover less than it claims.
	if len(ownerCount) != 2 {
		t.Fatalf("corpus does not split across both workers: %v", ownerCount)
	}

	code, body := post(t, ts.URL, api.AnalyzeRequest{Items: items})
	if code != http.StatusOK {
		t.Fatalf("batch = %d: %s", code, body)
	}
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Completed != len(items) || br.Failed != 0 {
		t.Fatalf("tally = %d/%d, want %d/0", br.Completed, br.Failed, len(items))
	}
	for i, it := range br.Items {
		if it.CacheKey != wantKeys[i] {
			t.Errorf("item %d came back under key %s, want %s (order broken?)", i, it.CacheKey, wantKeys[i])
		}
	}

	// Each worker computed exactly its owned share: the routing key the
	// router derived matches the daemon's own content addressing.
	statsA, statsB := workerAccepted(t, w1.URL), workerAccepted(t, w2.URL)
	if statsA != ownerCount[w1.URL] || statsB != ownerCount[w2.URL] {
		t.Errorf("owner split = %d/%d, ring says %d/%d",
			statsA, statsB, ownerCount[w1.URL], ownerCount[w2.URL])
	}
	_, _ = sA, sB
}

func workerAccepted(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, line := range strings.Split(buf.String(), "\n") {
		var n int
		if _, err := fmt.Sscanf(line, "canaryd_jobs_accepted_total %d", &n); err == nil {
			return n
		}
	}
	t.Fatal("no accepted counter in worker metrics")
	return 0
}

// fakeWorker is a scriptable stand-in for canaryd: per-request behavior
// by attempt count, plus a healthz.
type fakeWorker struct {
	mu       sync.Mutex
	requests int
	respond  func(n int, w http.ResponseWriter)
}

func (f *fakeWorker) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.requests++
		n := f.requests
		f.mu.Unlock()
		f.respond(n, w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.Health{Status: "ok", QueueCapacity: 8})
	})
	return mux
}

func (f *fakeWorker) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.requests
}

func okJob(w http.ResponseWriter, tag string) {
	json.NewEncoder(w).Encode(api.JobResponse{Status: "done", JobID: tag})
}

// TestRouterFailover scripts the owner to fail and expects the next
// replica in ring order to answer, with the failover counted.
func TestRouterFailover(t *testing.T) {
	// Both fakes answer; one is scripted to 500 every time. Whichever the
	// ring picks as owner, a routed submission must come back "done" from
	// the healthy one.
	bad := &fakeWorker{respond: func(n int, w http.ResponseWriter) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}}
	good := &fakeWorker{respond: func(n int, w http.ResponseWriter) {
		okJob(w, "good")
	}}
	tsBad := httptest.NewServer(bad.handler())
	defer tsBad.Close()
	tsGood := httptest.NewServer(good.handler())
	defer tsGood.Close()

	rt, ts := newRouter(t, fleet.RouterConfig{
		Workers:      []string{tsBad.URL, tsGood.URL},
		RetryBackoff: time.Millisecond,
	})

	// Find a source owned by the bad worker so the walk must fail over.
	src := buggySrc
	for i := 0; ; i++ {
		key := canary.SubmissionKey(src, canary.DefaultOptions())
		if rt.Ring().Owner(key) == tsBad.URL {
			break
		}
		src = fmt.Sprintf("%s\nfunc pad%d() { p = malloc(); }", buggySrc, i)
	}

	code, body := post(t, ts.URL, api.AnalyzeRequest{Source: src})
	if code != http.StatusOK {
		t.Fatalf("failover submission = %d: %s", code, body)
	}
	var jr api.JobResponse
	if err := json.Unmarshal(body, &jr); err != nil || jr.JobID != "good" {
		t.Fatalf("response = %s", body)
	}
	if bad.count() == 0 || good.count() == 0 {
		t.Fatalf("owner was not tried first: bad=%d good=%d", bad.count(), good.count())
	}
	if got := rt.Stats(); got.Failovers == 0 || got.UpstreamErrs == 0 {
		t.Fatalf("failover not counted: %+v", got)
	}
}

// TestRouterExhaustion: every worker fails → 502, exhaustion counted.
func TestRouterExhaustion(t *testing.T) {
	bad := &fakeWorker{respond: func(n int, w http.ResponseWriter) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}}
	tsBad := httptest.NewServer(bad.handler())
	defer tsBad.Close()

	rt, ts := newRouter(t, fleet.RouterConfig{
		Workers:      []string{tsBad.URL},
		RetryBackoff: time.Millisecond,
	})
	code, body := post(t, ts.URL, api.AnalyzeRequest{Source: buggySrc})
	if code != http.StatusBadGateway {
		t.Fatalf("exhausted walk = %d: %s", code, body)
	}
	if got := rt.Stats(); got.Exhausted != 1 {
		t.Fatalf("stats = %+v", got)
	}
}

// TestRouterDedup holds the single upstream worker slow and fires
// concurrent identical submissions: exactly one upstream call, every
// caller gets its response.
func TestRouterDedup(t *testing.T) {
	release := make(chan struct{})
	slow := &fakeWorker{respond: func(n int, w http.ResponseWriter) {
		<-release
		okJob(w, fmt.Sprintf("call-%d", n))
	}}
	tsSlow := httptest.NewServer(slow.handler())
	defer tsSlow.Close()

	rt, ts := newRouter(t, fleet.RouterConfig{Workers: []string{tsSlow.URL}})

	const callers = 8
	var started, done sync.WaitGroup
	bodies := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		started.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			started.Done()
			_, bodies[i] = post(t, ts.URL, api.AnalyzeRequest{Source: buggySrc})
		}(i)
	}
	started.Wait()
	// Release only once every follower has joined the in-flight entry, so
	// no late arrival can become a second leader.
	deadline := time.Now().Add(10 * time.Second)
	for rt.Stats().Deduped != callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced: %+v", rt.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	done.Wait()

	if got := slow.count(); got != 1 {
		t.Fatalf("upstream calls = %d, want 1", got)
	}
	for i := 1; i < callers; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("caller %d got a different body", i)
		}
	}
	if got := rt.Stats(); got.Deduped != callers-1 {
		t.Fatalf("deduped = %d, want %d", got.Deduped, callers-1)
	}
}

// TestRouterHealthStates checks the checker distinguishes a dead worker
// from a live one and the router routes around the corpse.
func TestRouterHealthStates(t *testing.T) {
	good := &fakeWorker{respond: func(n int, w http.ResponseWriter) { okJob(w, "good") }}
	tsGood := httptest.NewServer(good.handler())
	defer tsGood.Close()

	// A listener that is closed immediately: connection refused, i.e. down.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	rt, ts := newRouter(t, fleet.RouterConfig{
		Workers:        []string{tsGood.URL, deadURL},
		RetryBackoff:   time.Millisecond,
		HealthInterval: 10 * time.Millisecond,
	})

	deadline := time.Now().Add(5 * time.Second)
	for {
		states := rt.WorkerStates()
		if states[deadURL] == fleet.WorkerDown && states[tsGood.URL] == fleet.WorkerUp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health never settled: %v", states)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Any submission — even one owned by the dead node — lands on the
	// live worker without burning an attempt on the corpse.
	forwardsBefore := rt.Stats().Forwards
	code, _ := post(t, ts.URL, api.AnalyzeRequest{Source: buggySrc})
	if code != http.StatusOK {
		t.Fatalf("submission with a dead worker = %d", code)
	}
	if got := rt.Stats().Forwards - forwardsBefore; got != 1 {
		t.Fatalf("upstream posts = %d, want 1 (down node should be skipped)", got)
	}

	// The router healthz reports both states.
	resp, err := http.Get(ts.URL + "/healthz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var report struct {
		Status  string `json:"status"`
		Workers []struct {
			URL   string `json:"url"`
			State string `json:"state"`
		} `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	if report.Status != "ok" || len(report.Workers) != 2 {
		t.Fatalf("healthz report = %+v", report)
	}
	states := map[string]string{}
	for _, w := range report.Workers {
		states[w.URL] = w.State
	}
	if states[deadURL] != "down" || states[tsGood.URL] != "up" {
		t.Fatalf("reported states = %v", states)
	}
}

// TestRouterSaturatedIsNotDown: a full-queue worker stays routable.
func TestRouterSaturatedIsNotDown(t *testing.T) {
	var sat atomic.Bool
	sat.Store(true)
	worker := &fakeWorker{respond: func(n int, w http.ResponseWriter) { okJob(w, "ok") }}
	mux := http.NewServeMux()
	mux.Handle("POST /v1/analyze", worker.handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := api.Health{Status: "ok", QueueCapacity: 4}
		if sat.Load() {
			h.QueueDepth = 4
		}
		json.NewEncoder(w).Encode(h)
	})
	tsW := httptest.NewServer(mux)
	defer tsW.Close()

	rt, ts := newRouter(t, fleet.RouterConfig{
		Workers:        []string{tsW.URL},
		HealthInterval: 10 * time.Millisecond,
	})

	deadline := time.Now().Add(5 * time.Second)
	for rt.WorkerStates()[tsW.URL] != fleet.WorkerSaturated {
		if time.Now().After(deadline) {
			t.Fatalf("saturation never observed: %v", rt.WorkerStates())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Saturated ≠ down: the submission still routes there (the worker's
	// admission retry loop absorbs the wait).
	code, _ := post(t, ts.URL, api.AnalyzeRequest{Source: buggySrc})
	if code != http.StatusOK {
		t.Fatalf("submission to saturated worker = %d", code)
	}
}

// TestRouterRejectsAsync: async is a per-worker concept.
func TestRouterRejectsAsync(t *testing.T) {
	good := &fakeWorker{respond: func(n int, w http.ResponseWriter) { okJob(w, "ok") }}
	tsW := httptest.NewServer(good.handler())
	defer tsW.Close()
	_, ts := newRouter(t, fleet.RouterConfig{Workers: []string{tsW.URL}})

	code, body := post(t, ts.URL, api.AnalyzeRequest{Source: buggySrc, Async: true})
	if code != http.StatusBadRequest {
		t.Fatalf("async through router = %d: %s", code, body)
	}
	if good.count() != 0 {
		t.Fatal("async request reached a worker")
	}
}

// postResp is post with header access, for tests that assert on
// Retry-After and friends.
func postResp(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// srcOwnedBy pads buggySrc until the ring places it on owner.
func srcOwnedBy(t *testing.T, rt *fleet.Router, owner string) string {
	t.Helper()
	src := buggySrc
	for i := 0; ; i++ {
		key := canary.SubmissionKey(src, canary.DefaultOptions())
		if rt.Ring().Owner(key) == owner {
			return src
		}
		if i > 256 {
			t.Fatal("no padded source lands on the wanted owner")
		}
		src = fmt.Sprintf("%s\nfunc pad%d() { p = malloc(); }", buggySrc, i)
	}
}

// TestRouterBreakerOpensAndRecovers walks one worker's breaker through
// the full cycle: consecutive hard failures open it, an open breaker
// demotes the worker to last-resort (unused while a healthy replica
// answers), the cooldown admits a half-open probe, and a probe success
// closes it again.
func TestRouterBreakerOpensAndRecovers(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	flaky := &fakeWorker{respond: func(n int, w http.ResponseWriter) {
		if failing.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		okJob(w, "flaky")
	}}
	good := &fakeWorker{respond: func(n int, w http.ResponseWriter) { okJob(w, "good") }}
	tsFlaky := httptest.NewServer(flaky.handler())
	defer tsFlaky.Close()
	tsGood := httptest.NewServer(good.handler())
	defer tsGood.Close()

	rt, ts := newRouter(t, fleet.RouterConfig{
		Workers:          []string{tsFlaky.URL, tsGood.URL},
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  150 * time.Millisecond,
	})
	// Distinct sources, every one owned by the flaky worker, so each
	// walk tries it first (padding changes the key, so ownership must be
	// re-derived per source, not assumed from a shared prefix).
	srcs := make([]string, 3)
	for i, pad := 0, 0; i < len(srcs); pad++ {
		src := fmt.Sprintf("%s\nfunc dist%d() { p = malloc(); }", buggySrc, pad)
		key := canary.SubmissionKey(src, canary.DefaultOptions())
		if rt.Ring().Owner(key) == tsFlaky.URL {
			srcs[i] = src
			i++
		}
		if pad > 1024 {
			t.Fatal("no padded sources land on the flaky worker")
		}
	}
	src := srcs[0]

	// Two failing walks: each tries the owner (hard failure), fails over
	// to the healthy worker. The second failure trips the breaker.
	for i := 0; i < 2; i++ {
		code, body := post(t, ts.URL, api.AnalyzeRequest{Source: srcs[i+1]})
		if code != http.StatusOK {
			t.Fatalf("walk %d = %d: %s", i, code, body)
		}
	}
	if st := rt.BreakerStates()[tsFlaky.URL]; st != fleet.BreakerOpen {
		t.Fatalf("breaker after %d hard failures = %v, want open", 2, st)
	}
	if got := rt.Stats().BreakerOpens; got != 1 {
		t.Fatalf("breaker opens counted = %d, want 1", got)
	}

	// While open, the flaky worker is skipped entirely: the next
	// submission goes straight to the healthy one, no failover burned.
	before := flaky.count()
	code, body := post(t, ts.URL, api.AnalyzeRequest{Source: src})
	if code != http.StatusOK {
		t.Fatalf("submission with open breaker = %d: %s", code, body)
	}
	if flaky.count() != before {
		t.Fatal("open breaker did not keep traffic off the failing worker")
	}

	// After the cooldown the worker has healed; the half-open probe
	// succeeds and the breaker closes.
	failing.Store(false)
	time.Sleep(200 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for rt.BreakerStates()[tsFlaky.URL] != fleet.BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after recovery: %v", rt.BreakerStates())
		}
		post(t, ts.URL, api.AnalyzeRequest{Source: src})
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterHedgedRequest pins the hedging path: once a latency
// baseline exists, a forward stuck past the hedge delay fires a second
// attempt at the next ring candidate and the first answer wins — the
// client sees the fast worker's response while the owner is still
// stalled.
func TestRouterHedgedRequest(t *testing.T) {
	release := make(chan struct{})
	fast := &fakeWorker{respond: func(n int, w http.ResponseWriter) { okJob(w, "fast") }}
	slow := &fakeWorker{respond: func(n int, w http.ResponseWriter) {
		<-release
		okJob(w, "slow")
	}}
	tsFast := httptest.NewServer(fast.handler())
	tsSlow := httptest.NewServer(slow.handler())
	defer func() {
		close(release)
		tsFast.Close()
		tsSlow.Close()
	}()

	rt, ts := newRouter(t, fleet.RouterConfig{
		Workers:       []string{tsFast.URL, tsSlow.URL},
		HedgeQuantile: 0.5,
		HedgeMinDelay: 5 * time.Millisecond,
		Timeout:       10 * time.Second,
	})

	// Warm the latency sampler with eight fast-owned submissions; below
	// eight samples hedging stays off by design (no baseline, no hedge).
	warm := 0
	for i := 0; warm < 8; i++ {
		src := fmt.Sprintf("%s\nfunc warm%d() { p = malloc(); }", buggySrc, i)
		key := canary.SubmissionKey(src, canary.DefaultOptions())
		if rt.Ring().Owner(key) != tsFast.URL {
			continue
		}
		if code, body := post(t, ts.URL, api.AnalyzeRequest{Source: src}); code != http.StatusOK {
			t.Fatalf("warmup %d = %d: %s", i, code, body)
		}
		warm++
	}
	if got := rt.Stats().Hedges; got != 0 {
		t.Fatalf("hedges during warmup = %d, want 0", got)
	}

	// Now a submission owned by the stalled worker: the hedge must fire
	// and the fast replica's answer must win.
	src := srcOwnedBy(t, rt, tsSlow.URL)
	code, body := post(t, ts.URL, api.AnalyzeRequest{Source: src})
	if code != http.StatusOK {
		t.Fatalf("hedged submission = %d: %s", code, body)
	}
	var jr api.JobResponse
	if err := json.Unmarshal(body, &jr); err != nil || jr.JobID != "fast" {
		t.Fatalf("hedged response = %s, want the fast worker's answer", body)
	}
	st := rt.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedge not counted: hedges=%d wins=%d", st.Hedges, st.HedgeWins)
	}
}

// TestRouterAllWorkersDownFailsFast: with every worker unreachable the
// router answers quickly with a typed JSON 502 plus a Retry-After hint
// instead of hanging, and resumes routing the moment a membership (or
// operator) update brings a live worker back — no restart needed.
func TestRouterAllWorkersDownFailsFast(t *testing.T) {
	corpse := httptest.NewServer(http.NotFoundHandler())
	corpseURL := corpse.URL
	corpse.Close() // connection refused from here on

	rt, ts := newRouter(t, fleet.RouterConfig{
		Workers:      []string{corpseURL},
		RetryBackoff: time.Millisecond,
		Timeout:      2 * time.Second,
	})

	start := time.Now()
	resp := postResp(t, ts.URL, api.AnalyzeRequest{Source: buggySrc})
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all-down submission = %d: %s", resp.StatusCode, buf.Bytes())
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("all-down walk took %v, want fail-fast", elapsed)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(buf.Bytes(), &apiErr); err != nil || apiErr.Error == "" {
		t.Fatalf("error body is not typed JSON: %s", buf.Bytes())
	}
	if got := rt.Stats().Exhausted; got != 1 {
		t.Fatalf("exhausted = %d, want 1", got)
	}

	// An empty member set (dynamic ring with nothing known) refuses with
	// 503 + Retry-After rather than attempting anything.
	rt.SetWorkers(nil)
	resp2 := postResp(t, ts.URL, api.AnalyzeRequest{Source: buggySrc})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable || resp2.Header.Get("Retry-After") != "1" {
		t.Fatalf("empty-ring submission = %d, Retry-After %q", resp2.StatusCode, resp2.Header.Get("Retry-After"))
	}

	// Recovery: a live worker appears (as a membership change would
	// deliver it) and the very next submission routes without a restart.
	good := &fakeWorker{respond: func(n int, w http.ResponseWriter) { okJob(w, "revived") }}
	tsGood := httptest.NewServer(good.handler())
	defer tsGood.Close()
	rt.SetWorkers([]string{tsGood.URL})
	code, body := post(t, ts.URL, api.AnalyzeRequest{Source: buggySrc})
	var jr api.JobResponse
	if code != http.StatusOK || json.Unmarshal(body, &jr) != nil || jr.JobID != "revived" {
		t.Fatalf("post-recovery submission = %d: %s", code, body)
	}
}

// newJoinWorker starts a real canaryd with dynamic membership. The
// listener exists before the server so the advertise URL is its own
// real address; the returned kill() makes the whole endpoint vanish
// like SIGKILL (everything 503s, gossip included).
func newJoinWorker(t *testing.T, seeds []string, interval time.Duration) (url string, kill func()) {
	t.Helper()
	var h atomic.Pointer[http.Handler]
	dispatch := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hp := h.Load(); hp != nil {
			(*hp).ServeHTTP(w, r)
			return
		}
		http.Error(w, "down", http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(dispatch)
	t.Cleanup(ts.Close)
	if len(seeds) == 0 {
		// A first node seeds with itself: the agent skips self in the
		// seed list, but membership (and the gossip endpoint) is on.
		seeds = []string{ts.URL}
	}
	s, err := server.New(server.Config{
		Join:           append([]string(nil), seeds...),
		Advertise:      ts.URL,
		GossipInterval: interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	handler := s.Handler()
	h.Store(&handler)
	killed := false
	kill = func() {
		if killed {
			return
		}
		killed = true
		h.Store(nil)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}
	t.Cleanup(kill)
	return ts.URL, kill
}

// TestRouterJoinLearnsWorkers boots two real workers gossiping among
// themselves and a router configured with nothing but join seeds: the
// router must learn the worker set through membership, build its ring,
// route a real submission — and drop a worker from the ring when it
// dies, all without being restarted.
func TestRouterJoinLearnsWorkers(t *testing.T) {
	const interval = 20 * time.Millisecond
	w1, _ := newJoinWorker(t, nil, interval)
	w2, killW2 := newJoinWorker(t, []string{w1}, interval)

	rt, ts := newRouter(t, fleet.RouterConfig{
		Join:           []string{w1},
		Self:           "http://router.invalid",
		GossipInterval: interval,
		RetryBackoff:   time.Millisecond,
	})

	deadline := time.Now().Add(10 * time.Second)
	for rt.Ring().Len() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("router never learned both workers: ring len %d", rt.Ring().Len())
		}
		time.Sleep(5 * time.Millisecond)
	}

	code, body := post(t, ts.URL, api.AnalyzeRequest{Source: buggySrc})
	var jr api.JobResponse
	if code != http.StatusOK || json.Unmarshal(body, &jr) != nil || jr.Status != "done" {
		t.Fatalf("routed submission over learned ring = %d: %s", code, body)
	}

	// Kill worker 2; the router must shrink the ring to the survivor on
	// its own (suspect → dead on the gossip clocks, then an OnChange).
	killW2()
	_ = w2
	deadline = time.Now().Add(20 * time.Second)
	for rt.Ring().Len() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("router never dropped the dead worker: ring len %d", rt.Ring().Len())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rt.Ring().Owner(canary.SubmissionKey(buggySrc, canary.DefaultOptions())) != w1 {
		t.Fatal("survivor is not the remaining ring member")
	}
}
