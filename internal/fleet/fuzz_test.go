package fleet

import (
	"bytes"
	"testing"

	"canary/internal/diskstore"
)

// FuzzDecodePeerEntry hammers the peer cache response decoder: bytes from
// another fleet member are as untrusted as bytes off disk, so any input
// must either decode to a checksum-verified payload or be rejected —
// never panic, never hand back unverified bytes, never allocate past the
// input size on a hostile frame.
func FuzzDecodePeerEntry(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("CANARYv1"))
	f.Add(diskstore.EncodeEntry(nil))
	f.Add(diskstore.EncodeEntry([]byte(`{"reports":[]}`)))
	trunc := diskstore.EncodeEntry([]byte("truncated"))
	f.Add(trunc[:len(trunc)-1])
	flipped := diskstore.EncodeEntry([]byte("bitflip"))
	flipped = append([]byte(nil), flipped...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, b []byte) {
		payload, ok := DecodePeerEntry(b)
		if !ok {
			if payload != nil {
				t.Fatalf("rejected entry returned non-nil payload")
			}
			return
		}
		if len(payload) > len(b) {
			t.Fatalf("payload (%d bytes) larger than the frame it came from (%d bytes)", len(payload), len(b))
		}
		// An accepted frame must be exactly the canonical encoding of its
		// payload — the format has no slack for a peer to hide state in.
		if !bytes.Equal(diskstore.EncodeEntry(payload), b) {
			t.Fatalf("accepted entry does not re-encode to itself")
		}
	})
}
