package fleet

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"canary/internal/cache"
	"canary/internal/diskstore"
	"canary/internal/failpoint"
	"canary/internal/fleet/singleflight"
)

// MaxPeerEntryBytes bounds a peer cache response body. An honest peer
// never sends more than one analysis result or warm-store entry; a
// hostile or broken one claiming gigabytes is cut off at the limit and
// treated as a miss, so a peer can cost a worker bandwidth but never
// memory.
const MaxPeerEntryBytes = 64 << 20

// DecodePeerEntry validates a peer cache response: the diskstore entry
// framing verbatim (magic header, payload, SHA-256 checksum trailer),
// after a length guard. Any hostile shape — truncated frame, oversized
// body, corrupted payload — returns ok=false; the function never panics
// and allocates nothing beyond the checksum computation.
func DecodePeerEntry(b []byte) (payload []byte, ok bool) {
	if len(b) > MaxPeerEntryBytes {
		return nil, false
	}
	return diskstore.DecodeEntry(b)
}

// PeerStats is a point-in-time snapshot of a PeerClient's counters.
type PeerStats struct {
	// Fetches counts owner lookups that actually went to the network
	// (self-owned keys never do).
	Fetches uint64 `json:"fetches"`
	// Hits are fetches answered with a verified entry.
	Hits uint64 `json:"hits"`
	// Misses are clean 404s — the owner simply has not computed the key.
	Misses uint64 `json:"misses"`
	// Errors are transport failures, hostile bodies, and injected
	// peer-fetch faults; all degrade to local compute.
	Errors uint64 `json:"errors"`
	// Coalesced counts fetches answered by another in-flight fetch of the
	// same (namespace, key) instead of a second network call.
	Coalesced uint64 `json:"coalesced"`
}

// PeerClient is a worker's view of its fleet for the peer cache tier:
// before computing a missed key, ask the key's shard owner whether it
// already holds the bytes. Every failure mode degrades to a miss — the
// caller computes locally — so a broken peer can cost latency, never
// correctness.
type PeerClient struct {
	ring atomic.Pointer[Ring]
	self string
	hc   *http.Client

	flight  singleflight.Group[peerKey, []byte]
	fetches atomic.Uint64
	hits    atomic.Uint64
	misses  atomic.Uint64
	errors  atomic.Uint64
}

type peerKey struct {
	ns  string
	key cache.Key
}

// NewPeerClient builds a client over the full fleet member list (base
// URLs, including this node's own, which must equal self so the ring
// here agrees with the router's). timeout bounds each fetch; <= 0 selects
// 2 seconds — peer fetches race local compute measured in hundreds of
// milliseconds, so they must fail fast.
func NewPeerClient(peers []string, self string, timeout time.Duration) *PeerClient {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	p := &PeerClient{
		self: self,
		hc:   &http.Client{Timeout: timeout},
	}
	p.ring.Store(NewRing(peers))
	return p
}

// Self returns this node's own member URL.
func (p *PeerClient) Self() string { return p.self }

// Ring returns the client's current membership view.
func (p *PeerClient) Ring() *Ring { return p.ring.Load() }

// SetPeers atomically replaces the member set — the dynamic-membership
// path: a gossip event rebuilds the ring and every in-flight Fetch
// keeps the ring it started with. Shard ownership moves minimally
// (rendezvous hashing), and a briefly stale ring only costs a miss or a
// fetch from a node that recomputes — never wrong bytes.
func (p *PeerClient) SetPeers(peers []string) { p.ring.Store(NewRing(peers)) }

// Owner returns the shard owner of key under the fleet's ring.
func (p *PeerClient) Owner(key cache.Key) string { return p.Ring().Owner(key) }

// Fetch asks key's shard owner for the entry under ns. It returns a miss
// without touching the network when this node is the owner (there is no
// better copy than our own), when the peer-fetch failpoint fires, and on
// every transport or framing failure. Identical concurrent fetches
// coalesce into one network call.
func (p *PeerClient) Fetch(ns string, key cache.Key) ([]byte, bool) {
	owner := p.Owner(key)
	if owner == "" || owner == p.self {
		return nil, false
	}
	if failpoint.Inject(failpoint.SitePeerFetch) != nil {
		p.errors.Add(1)
		return nil, false
	}
	v, err, _ := p.flight.Do(peerKey{ns: ns, key: key}, func() ([]byte, error) {
		return p.fetchFrom(owner, ns, key)
	})
	if err != nil || v == nil {
		return nil, false
	}
	return v, true
}

// errPeerMiss marks a clean 404 so the counters can split misses from
// transport errors.
var errPeerMiss = fmt.Errorf("peer miss")

// fetchFrom performs one GET /v1/cache/{ns}/{key} against a peer and
// validates the framed response.
func (p *PeerClient) fetchFrom(owner, ns string, key cache.Key) ([]byte, error) {
	p.fetches.Add(1)
	resp, err := p.hc.Get(owner + "/v1/cache/" + ns + "/" + key.String())
	if err != nil {
		p.errors.Add(1)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		p.misses.Add(1)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		return nil, errPeerMiss
	}
	if resp.StatusCode != http.StatusOK {
		p.errors.Add(1)
		return nil, fmt.Errorf("peer %s: %s", owner, resp.Status)
	}
	// Read one byte past the cap so an oversized body is distinguishable
	// from one that exactly fills it.
	b, err := io.ReadAll(io.LimitReader(resp.Body, MaxPeerEntryBytes+1))
	if err != nil {
		p.errors.Add(1)
		return nil, err
	}
	payload, ok := DecodePeerEntry(b)
	if !ok {
		p.errors.Add(1)
		return nil, fmt.Errorf("peer %s: invalid entry framing", owner)
	}
	p.hits.Add(1)
	return payload, nil
}

// Stats returns the cumulative counters.
func (p *PeerClient) Stats() PeerStats {
	return PeerStats{
		Fetches:   p.fetches.Load(),
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Errors:    p.errors.Load(),
		Coalesced: p.flight.Dups(),
	}
}
