// Package fleet turns a set of canaryd workers into one logical cache:
// a consistent-hash ring assigns every SubmissionKey a stable owner node,
// a stateless HTTP router forwards each submission to its owner (failing
// over down the ring on worker errors), and a peer cache tier lets any
// worker serve an entry its shard owner already computed, speaking the
// diskstore entry wire format verbatim.
//
// Everything rests on the determinism contract: a SubmissionKey fully
// determines the analysis result bytes, so any node may compute any key,
// routing is purely a cache-locality optimization, and the findings are
// byte-identical no matter how many nodes the fleet has or which of them
// answered.
package fleet

import (
	"hash/fnv"
	"sort"

	"canary/internal/cache"
)

// Ring is an immutable rendezvous-hash (highest-random-weight) view of a
// node set: every key independently ranks all nodes by a deterministic
// per-(node, key) score, its owner is the top-ranked node, and the rest of
// the ranking is the failover order. Rendezvous hashing gives the two
// properties the fleet needs with no virtual-node tuning:
//
//   - placement is a pure function of (node ID, key) — identical across
//     process restarts and across machines configured with the same node
//     list in any order;
//   - membership changes are minimally disruptive: removing a node moves
//     exactly the keys it owned (~1/N), adding one steals ~1/(N+1) from
//     the others, and no other key changes owner.
//
// A Ring never mutates; build a new one for a new node set. Health is a
// routing-time concern (skip unhealthy nodes in Replicas order), not a
// membership change, so routing stays stable across transient failures.
type Ring struct {
	nodes []string // sorted, deduplicated
}

// NewRing builds a ring over the given node IDs (the router uses worker
// base URLs). Order and duplicates are irrelevant: the node set alone
// determines placement.
func NewRing(nodes []string) *Ring {
	uniq := make(map[string]bool, len(nodes))
	r := &Ring{nodes: make([]string, 0, len(nodes))}
	for _, n := range nodes {
		if n != "" && !uniq[n] {
			uniq[n] = true
			r.nodes = append(r.nodes, n)
		}
	}
	sort.Strings(r.nodes)
	return r
}

// Nodes returns the member IDs in sorted order. The slice is a copy.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// score is the rendezvous weight of node for key: a 64-bit FNV-1a over
// the node ID, a separator, and the key bytes. FNV is stable across
// processes and platforms (unlike maphash), which is what makes placement
// survive restarts.
func score(node string, key cache.Key) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write(key[:])
	return h.Sum64()
}

// Owner returns the node that owns key: the highest-scoring member, with
// the lexicographically smallest ID breaking (astronomically unlikely)
// score ties so the choice is still deterministic. Empty ring returns "".
func (r *Ring) Owner(key cache.Key) string {
	var best string
	var bestScore uint64
	for _, n := range r.nodes {
		s := score(n, key)
		if best == "" || s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best
}

// Replicas returns all member nodes ranked for key — the owner first,
// then each successive failover candidate. The router walks this order
// when a worker errors; the peer tier asks only the first entry.
func (r *Ring) Replicas(key cache.Key) []string {
	type ranked struct {
		node  string
		score uint64
	}
	rs := make([]ranked, len(r.nodes))
	for i, n := range r.nodes {
		rs[i] = ranked{node: n, score: score(n, key)}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].score != rs[j].score {
			return rs[i].score > rs[j].score
		}
		return rs[i].node < rs[j].node
	})
	out := make([]string, len(rs))
	for i, e := range rs {
		out[i] = e.node
	}
	return out
}
