// Package singleflight provides duplicate-call suppression: concurrent
// calls for the same key share one execution and its result. It is the
// in-process half of the fleet's cross-node dedup — canaryd coalesces
// identical in-flight submissions before they reach the queue, and the
// router coalesces identical in-flight forwards before they reach the
// network — so a thundering herd of one popular key costs one analysis.
//
// Unlike a cache, a Group retains nothing: the moment the shared call
// returns, the key is forgotten and the next caller starts a fresh one.
// Layering is therefore Get-cache-first, then Do.
package singleflight

import (
	"sync"
	"sync/atomic"
)

// call is one in-flight execution and its eventual result.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Group suppresses duplicate concurrent calls by key. The zero value is
// ready to use.
type Group[K comparable, V any] struct {
	mu   sync.Mutex
	m    map[K]*call[V]
	dups atomic.Uint64
}

// Do executes fn under key, unless an execution for key is already in
// flight, in which case it waits for that one and returns its result.
// shared reports whether the result came from another caller's execution.
// fn runs on the first caller's goroutine; a panic in fn propagates to
// that caller and leaves waiters to observe the panic as a completed call
// (the deferred completion still releases them, with the zero value and a
// nil error only if fn never assigned — callers treating results as
// content-addressed bytes must tolerate a zero value like any other miss).
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (val V, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[K]*call[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		g.dups.Add(1)
		<-c.done
		return c.val, c.err, true
	}
	c := &call[V]{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	return c.val, c.err, false
}

// Dups returns the cumulative number of calls answered by another
// caller's in-flight execution (the dedup counter the metrics expose).
func (g *Group[K, V]) Dups() uint64 { return g.dups.Load() }

// InFlight returns the number of keys currently executing.
func (g *Group[K, V]) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
