package singleflight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoSequential(t *testing.T) {
	var g Group[string, int]
	v, err, shared := g.Do("k", func() (int, error) { return 42, nil })
	if v != 42 || err != nil || shared {
		t.Fatalf("Do = (%d, %v, %v), want (42, nil, false)", v, err, shared)
	}
	// The key is forgotten once the call returns: a second Do re-executes.
	v, _, shared = g.Do("k", func() (int, error) { return 7, nil })
	if v != 7 || shared {
		t.Fatalf("second Do = (%d, shared=%v), want fresh (7, false)", v, shared)
	}
	if g.Dups() != 0 {
		t.Fatalf("Dups = %d after sequential calls, want 0", g.Dups())
	}
}

func TestDoError(t *testing.T) {
	var g Group[string, int]
	want := errors.New("boom")
	_, err, _ := g.Do("k", func() (int, error) { return 0, want })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

// TestDoCoalesces runs many concurrent calls for one key and checks that
// exactly one execution happened, every caller saw its result, and the
// dedup counter accounts for all the others.
func TestDoCoalesces(t *testing.T) {
	var g Group[string, int]
	const callers = 32
	var execs atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(callers)
	results := make([]int, callers)
	sharedCount := atomic.Int32{}
	go func() {
		g.Do("k", func() (int, error) {
			close(started)
			<-release
			execs.Add(1)
			return 99, nil
		})
	}()
	<-started // the leader holds the key; everyone below must coalesce
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (int, error) {
				execs.Add(1)
				return 99, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	// Wait until all callers are parked on the in-flight call.
	deadline := time.After(5 * time.Second)
	for g.Dups() < callers {
		select {
		case <-deadline:
			t.Fatalf("only %d/%d callers coalesced", g.Dups(), callers)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("%d executions, want 1", n)
	}
	for i, v := range results {
		if v != 99 {
			t.Fatalf("caller %d got %d, want 99", i, v)
		}
	}
	if int(sharedCount.Load()) != callers {
		t.Fatalf("%d callers saw shared=true, want %d", sharedCount.Load(), callers)
	}
	if g.InFlight() != 0 {
		t.Fatalf("%d keys still in flight after completion", g.InFlight())
	}
}

func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	var g Group[int, int]
	var wg sync.WaitGroup
	var execs atomic.Int32
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.Do(i, func() (int, error) { execs.Add(1); return i, nil })
		}(i)
	}
	wg.Wait()
	if execs.Load() != 8 {
		t.Fatalf("%d executions for 8 distinct keys", execs.Load())
	}
}
