package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"

	"canary/internal/cache"
)

// testKey derives a deterministic content key from an integer, the way
// real keys are derived from submissions: a SHA-256 digest.
func testKey(i int) cache.Key {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return sha256.Sum256(b[:])
}

func testNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://127.0.0.1:%d", 9000+i)
	}
	return out
}

// TestRingUniformDistribution hashes a large key population across 8
// nodes and bounds the chi-squared statistic of the owner counts: for
// df=7 the 99.9th percentile is 24.3, so a uniform hash stays far below
// the generous bound while any systematically skewed assignment blows it.
func TestRingUniformDistribution(t *testing.T) {
	const nodes, keys = 8, 80000
	r := NewRing(testNodes(nodes))
	counts := make(map[string]int)
	for i := 0; i < keys; i++ {
		counts[r.Owner(testKey(i))]++
	}
	if len(counts) != nodes {
		t.Fatalf("only %d of %d nodes own any key", len(counts), nodes)
	}
	expected := float64(keys) / nodes
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 24.3 is the 99.9% critical value at df=7; 40 leaves headroom against
	// the fixed key population while still catching real skew (a 2x-loaded
	// node alone contributes ~keys/nodes ≈ 10000).
	if chi2 > 40 {
		t.Fatalf("chi-squared %f exceeds uniformity bound 40 (counts %v)", chi2, counts)
	}
	for n, c := range counts {
		if ratio := float64(c) / expected; ratio < 0.8 || ratio > 1.2 {
			t.Fatalf("node %s owns %d keys, %0.2fx the uniform share", n, c, ratio)
		}
	}
}

// TestRingMinimalDisruption checks the rendezvous property: removing one
// node from N moves only the keys it owned (~1/N), adding one steals
// ~1/(N+1), and in both directions every key that does move involves the
// changed node. The ≤ 2/N bound is twice the expectation — loose enough
// for hash variance, far below the ~100% reshuffle of naive modulo.
func TestRingMinimalDisruption(t *testing.T) {
	const n, keys = 8, 40000
	all := testNodes(n)
	full := NewRing(all)
	smaller := NewRing(all[:n-1]) // drop the last node
	removed := all[n-1]

	moved := 0
	for i := 0; i < keys; i++ {
		k := testKey(i)
		before, after := full.Owner(k), smaller.Owner(k)
		if before != after {
			moved++
			if before != removed {
				t.Fatalf("key %d moved %s -> %s though %s left the ring", i, before, after, removed)
			}
		}
	}
	if bound := 2 * keys / n; moved > bound {
		t.Fatalf("node leave moved %d/%d keys, above the 2/N bound %d", moved, keys, bound)
	}
	if moved == 0 {
		t.Fatal("node leave moved no keys; the removed node owned nothing")
	}

	// Join is the same comparison in reverse: only keys the new node now
	// owns may change hands.
	movedIn := 0
	for i := 0; i < keys; i++ {
		k := testKey(i)
		before, after := smaller.Owner(k), full.Owner(k)
		if before != after {
			movedIn++
			if after != removed {
				t.Fatalf("key %d moved %s -> %s though only %s joined", i, before, after, removed)
			}
		}
	}
	if bound := 2 * keys / n; movedIn > bound {
		t.Fatalf("node join moved %d/%d keys, above the 2/N bound %d", movedIn, keys, bound)
	}
}

// TestRingDeterministicPlacement pins placement across process restarts
// two ways: structurally (rings built from permuted node lists agree) and
// against golden owners computed once and hard-coded here — if the hash
// function or the tie-break ever changes, the goldens fail and the change
// is a breaking one for every deployed fleet's cache locality.
func TestRingDeterministicPlacement(t *testing.T) {
	nodes := testNodes(4)
	r1 := NewRing(nodes)
	r2 := NewRing([]string{nodes[2], nodes[0], nodes[3], nodes[1], nodes[0]}) // permuted + dup
	for i := 0; i < 1000; i++ {
		k := testKey(i)
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("key %d: owner depends on construction order (%s vs %s)", i, r1.Owner(k), r2.Owner(k))
		}
		reps := r1.Replicas(k)
		if len(reps) != 4 || reps[0] != r1.Owner(k) {
			t.Fatalf("key %d: replicas %v do not start with owner %s", i, reps, r1.Owner(k))
		}
		seen := make(map[string]bool)
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("key %d: duplicate replica %s", i, n)
			}
			seen[n] = true
		}
	}

	golden := map[int]string{
		0: "http://127.0.0.1:9000",
		1: "http://127.0.0.1:9002",
		2: "http://127.0.0.1:9003",
		3: "http://127.0.0.1:9003",
		4: "http://127.0.0.1:9001",
	}
	for i, want := range golden {
		if got := r1.Owner(testKey(i)); got != want {
			t.Errorf("golden owner of key %d = %s, want %s (placement changed across versions)", i, got, want)
		}
	}
}

// TestRingEdgeCases covers the empty and single-node rings the router can
// transiently see during misconfiguration.
func TestRingEdgeCases(t *testing.T) {
	if owner := NewRing(nil).Owner(testKey(1)); owner != "" {
		t.Fatalf("empty ring owner = %q, want empty", owner)
	}
	one := NewRing([]string{"only"})
	if owner := one.Owner(testKey(1)); owner != "only" {
		t.Fatalf("single-node ring owner = %q", owner)
	}
	if reps := one.Replicas(testKey(2)); len(reps) != 1 || reps[0] != "only" {
		t.Fatalf("single-node replicas = %v", reps)
	}
}
