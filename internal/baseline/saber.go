package baseline

import (
	"context"
	"fmt"
	"time"

	"canary/internal/andersen"
	"canary/internal/guard"
	"canary/internal/ir"
	"canary/internal/vfg"
)

// Saber is the Saber-like comparator (Sui et al., ISSTA 2012 profile): an
// exhaustive Andersen-style flow-insensitive points-to analysis over the
// whole program, then a value-flow graph in which every store may flow to
// every load whose pointers may alias — across all threads and orders,
// which "trivially models thread interference" (§7.1).
type Saber struct{}

// Name implements Tool.
func (Saber) Name() string { return "saber" }

// BuildVFG implements Tool.
func (Saber) BuildVFG(ctx context.Context, prog *ir.Program) (*Result, error) {
	start := time.Now()
	a, err := andersen.RunAndersen(ctx, prog)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	g := vfg.New(prog)
	res := &Result{G: g}
	res.Stats.PointsToFacts = a.Size()

	// Direct edges (flow-insensitive, unguarded).
	var stores, loads []*ir.Inst
	for _, inst := range prog.Insts() {
		if cancelled(ctx) {
			return nil, ErrTimeout
		}
		switch inst.Op {
		case ir.OpAlloc, ir.OpAddr, ir.OpNull:
			g.AddEdge(vfg.Edge{From: g.ObjNode(inst.Obj), To: g.VarNode(inst.Def),
				Kind: vfg.EdgeObj, Guard: guard.True()})
		case ir.OpCopy:
			g.AddEdge(vfg.Edge{From: g.VarNode(inst.Val), To: g.VarNode(inst.Def),
				Kind: vfg.EdgeDirect, Guard: guard.True()})
		case ir.OpPhi, ir.OpBin:
			for _, op := range inst.Ops {
				g.AddEdge(vfg.Edge{From: g.VarNode(op), To: g.VarNode(inst.Def),
					Kind: vfg.EdgeDirect, Guard: guard.True()})
			}
		case ir.OpStore:
			stores = append(stores, inst)
		case ir.OpLoad:
			loads = append(loads, inst)
		}
	}

	// Indirect edges: the exhaustive store × load cross product filtered
	// only by may-alias — no flow, no threads, no guards.
	for _, s := range stores {
		if cancelled(ctx) {
			return nil, ErrTimeout
		}
		for _, l := range loads {
			if s.Field != l.Field {
				continue // distinct fields never alias
			}
			if !a.MayAlias(s.Ptr, l.Ptr) {
				continue
			}
			kind := vfg.EdgeDD
			if s.Thread != l.Thread {
				kind = vfg.EdgeInterference
			}
			// Attribute the edge to one witness object for bookkeeping.
			var obj ir.ObjID
			for o := range a.Pts(s.Ptr) {
				if a.Pts(l.Ptr)[o] {
					obj = o
					break
				}
			}
			g.AddEdge(vfg.Edge{From: g.VarNode(s.Val), To: g.VarNode(l.Def),
				Kind: kind, Guard: guard.True(), Store: s.Label, Load: l.Label,
				Obj: obj, Field: s.Field})
		}
	}
	counts := g.EdgeCountByKind()
	res.Stats.DirectEdges = counts[vfg.EdgeDirect] + counts[vfg.EdgeObj]
	res.Stats.IndirectEdges = counts[vfg.EdgeDD] + counts[vfg.EdgeInterference]
	res.Stats.BuildTime = time.Since(start)
	return res, nil
}
