package baseline

import (
	"context"
	"errors"
	"testing"
	"time"

	"canary/internal/ir"
	"canary/internal/lang"
)

const fig2 = `
func main(a) {
  x = malloc();
  *x = a;
  fork(t, thread1, x);
  if (theta1) {
    c = *x;
    print(*c);
  }
}

func thread1(y) {
  b = malloc();
  if (!theta1) {
    *y = b;
    free(b);
  }
}
`

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(ast, ir.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSaberReportsFig2FalsePositive(t *testing.T) {
	// The whole point of the comparison: the path-insensitive baseline
	// reports the Fig. 2 "bug" that Canary proves irrealizable.
	prog := lower(t, fig2)
	res, err := Saber{}.BuildVFG(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	reports := CheckReachability(res.G, "use-after-free")
	if len(reports) == 0 {
		t.Fatal("Saber-like checking should report the Fig. 2 false positive")
	}
}

func TestFsamReportsFig2FalsePositive(t *testing.T) {
	prog := lower(t, fig2)
	res, err := Fsam{}.BuildVFG(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	reports := CheckReachability(res.G, "use-after-free")
	if len(reports) == 0 {
		t.Fatal("Fsam-like checking should report the Fig. 2 false positive")
	}
}

func TestBaselinesFindTrueBug(t *testing.T) {
	src := `
func main() {
  x = malloc();
  fork(t, worker, x);
  c = *x;
  print(*c);
}
func worker(y) {
  b = malloc();
  *y = b;
  free(b);
}
`
	prog := lower(t, src)
	for _, tool := range []Tool{Saber{}, Fsam{}} {
		res, err := tool.BuildVFG(context.Background(), prog)
		if err != nil {
			t.Fatalf("%s: %v", tool.Name(), err)
		}
		if len(CheckReachability(res.G, "use-after-free")) == 0 {
			t.Errorf("%s should find the true UAF", tool.Name())
		}
	}
}

func TestSaberEdgeCrossProduct(t *testing.T) {
	// Flow-insensitivity: even a store AFTER the load produces an edge.
	src := `
func main() {
  x = malloc();
  p = *x;
  q = p;
  *x = q;
}
`
	prog := lower(t, src)
	res, err := Saber{}.BuildVFG(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IndirectEdges == 0 {
		t.Fatal("flow-insensitive Saber must connect the store to the load regardless of order")
	}
}

func TestFsamFlowSensitiveIntraThread(t *testing.T) {
	// Flow-sensitivity: a store after the load yields no intra-thread edge.
	src := `
func main() {
  x = malloc();
  p = *x;
  q = p;
  *x = q;
}
`
	prog := lower(t, src)
	res, err := Fsam{}.BuildVFG(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IndirectEdges != 0 {
		t.Fatalf("flow-sensitive Fsam must not connect a later store to an earlier load (got %d edges)",
			res.Stats.IndirectEdges)
	}
}

func TestFsamStrongUpdate(t *testing.T) {
	// The second store strongly updates the singleton object, so the load
	// sees only the second value.
	src := `
func main() {
  x = malloc();
  a = malloc();
  b = malloc();
  *x = a;
  *x = b;
  p = *x;
}
`
	prog := lower(t, src)
	res, err := Fsam{}.BuildVFG(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IndirectEdges != 1 {
		t.Fatalf("strong update should leave exactly 1 dd edge, got %d", res.Stats.IndirectEdges)
	}
}

func TestTimeout(t *testing.T) {
	prog := lower(t, fig2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expire immediately
	if _, err := (Saber{}).BuildVFG(ctx, prog); err == nil {
		t.Fatal("expired context should abort Saber")
	} else if !errors.Is(err, ErrTimeout) && !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	time.Sleep(time.Millisecond)
	if _, err := (Fsam{}).BuildVFG(ctx2, prog); err == nil {
		t.Fatal("expired context should abort Fsam")
	}
}

func TestStatsPopulated(t *testing.T) {
	prog := lower(t, fig2)
	for _, tool := range []Tool{Saber{}, Fsam{}} {
		res, err := tool.BuildVFG(context.Background(), prog)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.PointsToFacts == 0 || res.Stats.DirectEdges == 0 {
			t.Errorf("%s: stats not populated: %+v", tool.Name(), res.Stats)
		}
	}
}
