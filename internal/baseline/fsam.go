package baseline

import (
	"context"
	"fmt"
	"time"

	"canary/internal/andersen"
	"canary/internal/guard"
	"canary/internal/ir"
	"canary/internal/vfg"
)

// Fsam is the Fsam-like comparator (Sui et al., CGO 2016 profile): a
// flow-sensitive pointer analysis for multithreaded programs. It first runs
// the exhaustive Andersen analysis as an auxiliary (the pre-computed
// thread-aware def-use chains of the original), then computes and — unlike
// Canary — retains per-instruction memory states for the entire program,
// which is where its memory cost comes from (Fig. 7b). Intra-thread
// def-use is flow-sensitive; cross-thread def-use is thread-aware but
// order- and path-insensitive.
type Fsam struct{}

// Name implements Tool.
func (Fsam) Name() string { return "fsam" }

// BuildVFG implements Tool.
func (Fsam) BuildVFG(ctx context.Context, prog *ir.Program) (*Result, error) {
	start := time.Now()
	a, err := andersen.RunAndersen(ctx, prog)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	g := vfg.New(prog)
	res := &Result{G: g}
	res.Stats.PointsToFacts = a.Size()

	// Direct edges, as in Saber.
	for _, inst := range prog.Insts() {
		switch inst.Op {
		case ir.OpAlloc, ir.OpAddr, ir.OpNull:
			g.AddEdge(vfg.Edge{From: g.ObjNode(inst.Obj), To: g.VarNode(inst.Def),
				Kind: vfg.EdgeObj, Guard: guard.True()})
		case ir.OpCopy:
			g.AddEdge(vfg.Edge{From: g.VarNode(inst.Val), To: g.VarNode(inst.Def),
				Kind: vfg.EdgeDirect, Guard: guard.True()})
		case ir.OpPhi, ir.OpBin:
			for _, op := range inst.Ops {
				g.AddEdge(vfg.Edge{From: g.VarNode(op), To: g.VarNode(inst.Def),
					Kind: vfg.EdgeDirect, Guard: guard.True()})
			}
		}
	}

	// Per-instruction flow-sensitive memory states, retained for the whole
	// program. state[label] maps each field-sensitive location to the set
	// of reaching store labels.
	type loc struct {
		obj   ir.ObjID
		field string
	}
	type memMap map[loc]map[ir.Label]bool
	states := make(map[ir.Label]memMap, prog.NumInsts())

	cloneInto := func(dst, src memMap) {
		for o, ss := range src {
			d := dst[o]
			if d == nil {
				d = make(map[ir.Label]bool, len(ss))
				dst[o] = d
			}
			for s := range ss {
				d[s] = true
			}
		}
	}

	// Cross-thread stores per location (thread-aware def-use): all stores
	// whose pointer may point to the object, at the matching field.
	objStores := make(map[loc][]*ir.Inst)
	for _, inst := range prog.Insts() {
		if inst.Op == ir.OpStore {
			for o := range a.Pts(inst.Ptr) {
				objStores[loc{o, inst.Field}] = append(objStores[loc{o, inst.Field}], inst)
			}
		}
	}

	instsSeen := 0
	for _, th := range prog.Threads {
		// Blocks are topologically ordered; one sweep suffices per thread.
		blockOut := make(map[*ir.Block]memMap)
		for _, blk := range th.Blocks {
			// The retained snapshots grow quadratically; poll the deadline
			// frequently so the harness's timeout fires before memory does.
			instsSeen += len(blk.Insts) + 1
			if instsSeen >= 512 {
				instsSeen = 0
				if cancelled(ctx) {
					return nil, ErrTimeout
				}
			}
			cur := make(memMap)
			for _, pred := range blk.Preds {
				cloneInto(cur, blockOut[pred])
			}
			for _, inst := range blk.Insts {
				// Retain the full IN state per instruction (the deliberate
				// memory cost of exhaustive flow-sensitive analysis).
				snapshot := make(memMap, len(cur))
				cloneInto(snapshot, cur)
				states[inst.Label] = snapshot
				switch inst.Op {
				case ir.OpStore:
					for o := range a.Pts(inst.Ptr) {
						k := loc{o, inst.Field}
						if len(a.Pts(inst.Ptr)) == 1 {
							delete(cur, k) // strong update
						}
						ss := cur[k]
						if ss == nil {
							ss = make(map[ir.Label]bool, 1)
							cur[k] = ss
						}
						ss[inst.Label] = true
					}
				case ir.OpLoad:
					for o := range a.Pts(inst.Ptr) {
						k := loc{o, inst.Field}
						// Intra-thread flow-sensitive def-use.
						for s := range cur[k] {
							sInst := prog.Inst(s)
							g.AddEdge(vfg.Edge{From: g.VarNode(sInst.Val), To: g.VarNode(inst.Def),
								Kind: vfg.EdgeDD, Guard: guard.True(),
								Store: s, Load: inst.Label, Obj: o, Field: inst.Field})
						}
						// Cross-thread def-use: any store in another thread.
						for _, sInst := range objStores[k] {
							if sInst.Thread == inst.Thread {
								continue
							}
							g.AddEdge(vfg.Edge{From: g.VarNode(sInst.Val), To: g.VarNode(inst.Def),
								Kind: vfg.EdgeInterference, Guard: guard.True(),
								Store: sInst.Label, Load: inst.Label, Obj: o, Field: inst.Field})
						}
					}
				}
			}
			blockOut[blk] = cur
		}
	}
	// Keep the retained states alive in the result's accounting (they are
	// what Fig. 7b measures).
	res.Stats.PointsToFacts += len(states)

	counts := g.EdgeCountByKind()
	res.Stats.DirectEdges = counts[vfg.EdgeDirect] + counts[vfg.EdgeObj]
	res.Stats.IndirectEdges = counts[vfg.EdgeDD] + counts[vfg.EdgeInterference]
	res.Stats.BuildTime = time.Since(start)
	return res, nil
}
