// Package baseline reimplements the two comparison tools of the paper's
// evaluation (§7) over the same IR and VFG substrate as Canary:
//
//   - Saber-like: an Andersen-style, flow-insensitive exhaustive points-to
//     analysis that "trivially models thread interference" (every store may
//     flow to every aliasing load, regardless of threads or order),
//     followed by path-insensitive source–sink reachability checking.
//
//   - Fsam-like: an Andersen-style, flow-sensitive pointer analysis for
//     multithreaded programs that keeps per-instruction memory states for
//     the whole program (the memory cost the paper measures) and follows
//     thread-aware def-use chains, still without path or order reasoning.
//
// Both produce a vfg.Graph and a plain reachability bug report list, so the
// evaluation harness can compare construction cost (Fig. 7) and report
// precision (Table 1) under identical conditions.
package baseline

import (
	"context"
	"errors"
	"time"

	"canary/internal/ir"
	"canary/internal/vfg"
)

// ErrTimeout is returned when a tool exceeds its deadline (the "NA" entries
// of the paper's Table 1 and the timeout bars of Fig. 7).
var ErrTimeout = errors.New("baseline: analysis timed out")

// Result is the outcome of a baseline VFG construction.
type Result struct {
	G     *vfg.Graph
	Stats Stats
}

// Stats describes construction cost.
type Stats struct {
	PointsToFacts int
	DirectEdges   int
	IndirectEdges int
	BuildTime     time.Duration
}

// Tool is a VFG-building analysis (Canary's comparators).
type Tool interface {
	Name() string
	// BuildVFG constructs the tool's value-flow graph; it returns
	// ErrTimeout (wrapped) if ctx expires first.
	BuildVFG(ctx context.Context, prog *ir.Program) (*Result, error)
}

// NaiveReport is a path-insensitive source–sink report: no guards, no
// order constraints — just graph reachability. This is how the baselines
// check bugs, and why their report counts explode in Table 1.
type NaiveReport struct {
	Kind   string
	Source ir.Label
	Sink   ir.Label
}

// CheckReachability runs the plain source–sink reachability checking used
// by both baselines: a report for every (source, sink) pair connected in
// the graph. kind selects the property using the same source/sink
// conventions as the core checkers.
func CheckReachability(g *vfg.Graph, kind string) []NaiveReport {
	prog := g.Prog
	type src struct {
		node  vfg.NodeID
		label ir.Label
	}
	var sources []src
	sinks := make(map[ir.VarID][]ir.Label)
	for _, inst := range prog.Insts() {
		switch kind {
		case "use-after-free":
			if inst.Op == ir.OpFree {
				sources = append(sources, src{g.VarNode(inst.Val), inst.Label})
			}
			if inst.Op == ir.OpDeref {
				sinks[inst.Val] = append(sinks[inst.Val], inst.Label)
			}
		case "double-free":
			if inst.Op == ir.OpFree {
				sources = append(sources, src{g.VarNode(inst.Val), inst.Label})
				sinks[inst.Val] = append(sinks[inst.Val], inst.Label)
			}
		case "null-deref":
			if inst.Op == ir.OpNull {
				sources = append(sources, src{g.VarNode(inst.Def), inst.Label})
			}
			if inst.Op == ir.OpDeref {
				sinks[inst.Val] = append(sinks[inst.Val], inst.Label)
			}
		case "taint-leak":
			if inst.Op == ir.OpTaint {
				sources = append(sources, src{g.VarNode(inst.Def), inst.Label})
			}
			if inst.Op == ir.OpLeak {
				sinks[inst.Val] = append(sinks[inst.Val], inst.Label)
			}
		}
	}
	var out []NaiveReport
	seen := make(map[[2]ir.Label]bool)
	for _, s := range sources {
		reach := reachableFrom(g, s.node)
		for n := range reach {
			node := g.Node(n)
			if node.Kind != vfg.NodeVar {
				continue
			}
			for _, sinkLabel := range sinks[node.Var] {
				if sinkLabel == s.label {
					continue
				}
				key := [2]ir.Label{s.label, sinkLabel}
				if kind == "double-free" && key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				if seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, NaiveReport{Kind: kind, Source: s.label, Sink: sinkLabel})
			}
		}
	}
	return out
}

func reachableFrom(g *vfg.Graph, start vfg.NodeID) map[vfg.NodeID]bool {
	seen := map[vfg.NodeID]bool{start: true}
	stack := []vfg.NodeID{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range g.Out(n) {
			to := g.Edge(eid).To
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return seen
}

// cancelled reports whether ctx has expired.
func cancelled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
