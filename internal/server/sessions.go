package server

// The live-session surface: long-lived edit-accepting analysis engines
// behind /v1/sessions. A session is one canary.LiveSession plus the
// daemon-side policy around it — identity, per-session options and
// budgets, idle TTL, and the LRU-under-cap eviction that keeps
// thousands of multi-tenant sessions safe on one node.
//
//	POST   /v1/sessions               open (analyze the initial source)
//	POST   /v1/sessions/{id}/edits    apply an edit batch, get the delta
//	GET    /v1/sessions/{id}/findings current findings snapshot
//	DELETE /v1/sessions/{id}          close and release
//
// Locking: the registry map and lastUsed stamps live under sessMu
// (never held across an analysis); each session's edits serialize on
// its own mutex, which the janitor and the LRU evictor only TryLock —
// a busy session is by definition not idle, so it is never evicted
// mid-edit.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"canary"
	"canary/internal/api"
)

// liveSession is one registry entry: the engine plus its policy state.
type liveSession struct {
	id  string
	ttl time.Duration

	// mu serializes edit batches (and close) on this session. The
	// engine has its own lock, but the handler needs the seq check and
	// the apply to be one atomic step, and the evictors need a cheap
	// "is it busy" probe — TryLock on this.
	mu   sync.Mutex
	live *canary.LiveSession

	// opening marks a reserved ID whose initial analysis is still
	// running; such an entry is visible (so duplicate opens get their
	// 409) but not usable or evictable. Guarded by sessMu.
	opening bool
	// lastUsed is the idle clock, guarded by sessMu.
	lastUsed time.Time
}

// sessionJanitor periodically evicts idle-past-TTL sessions until
// BeginDrain stops it.
func (s *Server) sessionJanitor() {
	t := time.NewTicker(s.cfg.SessionSweep)
	defer t.Stop()
	for {
		select {
		case <-s.sessStop:
			return
		case <-t.C:
			s.evictIdleSessions(time.Now())
		}
	}
}

// evictIdleSessions closes every session idle past its TTL. Busy
// sessions (edit in flight) are skipped — they will be stamped fresh
// when the edit finishes anyway.
func (s *Server) evictIdleSessions(now time.Time) {
	var victims []*liveSession
	s.sessMu.Lock()
	for _, ls := range s.sessions {
		if ls.opening || now.Sub(ls.lastUsed) <= ls.ttl {
			continue
		}
		if !ls.mu.TryLock() {
			continue
		}
		delete(s.sessions, ls.id)
		victims = append(victims, ls)
	}
	s.sessMu.Unlock()
	for _, ls := range victims {
		ls.live.Close()
		ls.mu.Unlock()
		s.metrics.sessionsEvictedTTL.Add(1)
		s.metrics.sessionsClosed.Add(1)
	}
}

// evictLRULocked makes room for one more session by closing the least
// recently used idle one. Caller holds sessMu. Returns false when every
// session is busy or opening (the open must then be refused).
func (s *Server) evictLRULocked() bool {
	var oldest *liveSession
	for _, ls := range s.sessions {
		if ls.opening || !ls.mu.TryLock() {
			continue
		}
		if oldest == nil || ls.lastUsed.Before(oldest.lastUsed) {
			if oldest != nil {
				oldest.mu.Unlock()
			}
			oldest = ls
		} else {
			ls.mu.Unlock()
		}
	}
	if oldest == nil {
		return false
	}
	delete(s.sessions, oldest.id)
	oldest.live.Close()
	oldest.mu.Unlock()
	s.metrics.sessionsEvictedLRU.Add(1)
	s.metrics.sessionsClosed.Add(1)
	return true
}

// closeAllSessions releases every live session at shutdown.
func (s *Server) closeAllSessions() {
	s.sessMu.Lock()
	all := make([]*liveSession, 0, len(s.sessions))
	for _, ls := range s.sessions {
		delete(s.sessions, ls.id)
		all = append(all, ls)
	}
	s.sessMu.Unlock()
	for _, ls := range all {
		ls.mu.Lock()
		if ls.live != nil {
			ls.live.Close()
		}
		ls.mu.Unlock()
		s.metrics.sessionsClosed.Add(1)
	}
}

// newSessionID mints a server-chosen session ID, collision-checked
// against the registry. Caller holds sessMu.
func (s *Server) newSessionIDLocked() (string, error) {
	for attempt := 0; attempt < 100; attempt++ {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "", fmt.Errorf("minting session id: %v", err)
		}
		id := "s-" + hex.EncodeToString(b[:])
		if _, taken := s.sessions[id]; !taken {
			return id, nil
		}
	}
	return "", errors.New("minting session id: exhausted attempts")
}

// writeErrorCode is writeError with a stable machine-readable code.
func writeErrorCode(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	writeJSON(w, status, api.ErrorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

// handleSessionOpen serves POST /v1/sessions: reserve the ID, run the
// initial full analysis, answer 201 with the opening delta (every
// finding Added). Duplicate IDs get 409 instead of a silent replace; at
// the session cap the least recently used idle session is evicted, and
// if none is evictable the open is refused with 503.
func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	req, err := api.ParseOpenSessionRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ttl := s.cfg.SessionIdleTTL
	if req.TTLSeconds > 0 {
		if d := time.Duration(req.TTLSeconds) * time.Second; d < ttl {
			ttl = d
		}
	}

	// Reserve the ID under the registry lock. The placeholder makes a
	// concurrent duplicate open fail fast with 409 while this one's
	// initial analysis is still running — exactly one open of an ID can
	// ever succeed.
	ls := &liveSession{ttl: ttl, opening: true, lastUsed: time.Now()}
	s.sessMu.Lock()
	if s.Draining() {
		s.sessMu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", ErrDraining)
		return
	}
	if req.SessionID != "" {
		if _, taken := s.sessions[req.SessionID]; taken {
			s.sessMu.Unlock()
			writeErrorCode(w, http.StatusConflict, api.CodeDuplicateSession,
				"session %q is already open", req.SessionID)
			return
		}
		ls.id = req.SessionID
	} else {
		id, err := s.newSessionIDLocked()
		if err != nil {
			s.sessMu.Unlock()
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		ls.id = id
	}
	if len(s.sessions) >= s.cfg.MaxSessions && !s.evictLRULocked() {
		s.sessMu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeErrorCode(w, http.StatusServiceUnavailable, api.CodeSessionCap,
			"session cap %d reached and every session is busy", s.cfg.MaxSessions)
		return
	}
	s.sessions[ls.id] = ls
	s.sessMu.Unlock()

	opt := req.Options.Apply(s.cfg.Options)
	ctx, cancel := s.sessionCtx(r)
	defer cancel()
	start := time.Now()
	live, delta, err := s.session.OpenLive(ctx, req.Source, opt, canary.LiveConfig{StageTimeout: s.cfg.StageTimeout})
	elapsed := time.Since(start)
	if err != nil {
		s.sessMu.Lock()
		if s.sessions[ls.id] == ls {
			delete(s.sessions, ls.id)
		}
		s.sessMu.Unlock()
		status := http.StatusUnprocessableEntity
		if errors.Is(err, canary.ErrCanceled) {
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, "%v", err)
		return
	}
	ls.live = live
	s.sessMu.Lock()
	ls.opening = false
	ls.lastUsed = time.Now()
	s.sessMu.Unlock()
	s.metrics.sessionsOpened.Add(1)

	res := live.Result()
	writeJSON(w, http.StatusCreated, api.DeltaResponse{
		SessionID:       ls.id,
		FindingsDelta:   *delta,
		SummaryHits:     res.VFG.SummaryHits,
		FuncsReanalyzed: res.VFG.FuncsReanalyzed,
		ElapsedMS:       float64(elapsed.Microseconds()) / 1000,
	})
}

// sessionCtx bounds one session request like a job: the client's
// context capped by JobTimeout.
func (s *Server) sessionCtx(r *http.Request) (ctx context.Context, cancel context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.JobTimeout)
}

// lookupSession fetches a usable session and stamps its idle clock.
func (s *Server) lookupSession(w http.ResponseWriter, id string) (*liveSession, bool) {
	s.sessMu.Lock()
	ls, ok := s.sessions[id]
	if ok && ls.opening {
		s.sessMu.Unlock()
		writeErrorCode(w, http.StatusConflict, api.CodeSessionOpening,
			"session %q is still opening", id)
		return nil, false
	}
	if ok {
		ls.lastUsed = time.Now()
	}
	s.sessMu.Unlock()
	if !ok {
		writeErrorCode(w, http.StatusNotFound, api.CodeUnknownSession,
			"unknown session %q", id)
		return nil, false
	}
	return ls, true
}

// handleSessionEdits serves POST /v1/sessions/{id}/edits: apply one
// atomic edit batch and answer with its findings delta. A rejected
// batch (bad spans, unparsable patch, seq conflict) changes nothing.
func (s *Server) handleSessionEdits(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	req, err := api.ParseEditRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ls, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	edits := make([]canary.Edit, len(req.Edits))
	for i, e := range req.Edits {
		edits[i] = canary.Edit{Start: e.Start, End: e.End, Text: e.Text}
	}

	ls.mu.Lock()
	defer ls.mu.Unlock()
	if req.Seq != 0 && req.Seq != ls.live.Seq() {
		writeErrorCode(w, http.StatusConflict, api.CodeSeqConflict,
			"edits target seq %d but the session is at seq %d", req.Seq, ls.live.Seq())
		return
	}
	ctx, cancel := s.sessionCtx(r)
	defer cancel()
	start := time.Now()
	delta, err := ls.live.ApplyEdits(ctx, edits)
	elapsed := time.Since(start)
	if err != nil {
		switch {
		case errors.Is(err, canary.ErrEditRejected):
			s.metrics.sessionEditsRej.Add(1)
			writeErrorCode(w, http.StatusUnprocessableEntity, api.CodeEditRejected, "%v", err)
		case errors.Is(err, canary.ErrSessionClosed):
			// Evicted between lookup and lock.
			writeErrorCode(w, http.StatusNotFound, api.CodeUnknownSession,
				"unknown session %q", ls.id)
		case errors.Is(err, canary.ErrCanceled):
			writeError(w, http.StatusGatewayTimeout, "%v", err)
		default:
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
		}
		return
	}
	s.metrics.sessionEdits.Add(1)
	s.metrics.editLatency.observe(elapsed)
	resp := api.DeltaResponse{
		SessionID:     ls.id,
		FindingsDelta: *delta,
		ElapsedMS:     float64(elapsed.Microseconds()) / 1000,
	}
	if delta.Reanalyzed {
		res := ls.live.Result()
		resp.SummaryHits = res.VFG.SummaryHits
		resp.FuncsReanalyzed = res.VFG.FuncsReanalyzed
	} else {
		s.metrics.sessionTrivial.Add(1)
	}
	s.sessMu.Lock()
	ls.lastUsed = time.Now()
	s.sessMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionFindings serves GET /v1/sessions/{id}/findings: the full
// current findings, for clients that lost a delta or just attached.
func (s *Server) handleSessionFindings(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.lookupSession(w, r.PathValue("id"))
	if !ok {
		return
	}
	ls.mu.Lock()
	seq, reports := ls.live.Seq(), ls.live.Reports()
	ls.mu.Unlock()
	writeJSON(w, http.StatusOK, api.FindingsResponse{SessionID: ls.id, Seq: seq, Reports: reports})
}

// handleSessionDelete serves DELETE /v1/sessions/{id}: close and
// release. In-flight edits finish first (they hold the session mutex).
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.sessMu.Lock()
	ls, ok := s.sessions[id]
	if ok && ls.opening {
		s.sessMu.Unlock()
		writeErrorCode(w, http.StatusConflict, api.CodeSessionOpening,
			"session %q is still opening", id)
		return
	}
	if ok {
		delete(s.sessions, id)
	}
	s.sessMu.Unlock()
	if !ok {
		writeErrorCode(w, http.StatusNotFound, api.CodeUnknownSession,
			"unknown session %q", id)
		return
	}
	ls.mu.Lock()
	ls.live.Close()
	ls.mu.Unlock()
	s.metrics.sessionsClosed.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// OpenSessions returns the number of currently open live sessions.
func (s *Server) OpenSessions() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}
