package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"canary"
	"canary/internal/api"
	"canary/internal/cache"
	"canary/internal/diskstore"
	"canary/internal/failpoint"
	"canary/internal/fleet"
)

func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func postBatch(t *testing.T, url string, req AnalyzeRequest) (int, BatchResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("decoding batch response: %v", err)
	}
	return resp.StatusCode, br
}

// TestBatchAnalyze submits a mixed batch — two analyzable programs, one
// parse failure, one duplicate — and expects per-item results in request
// order under a 200 envelope: partial failure never fails siblings.
func TestBatchAnalyze(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	second := buggySrc + "\nfunc pad() { p = malloc(); }"
	status, br := postBatch(t, ts.URL, AnalyzeRequest{Items: []AnalyzeItem{
		{Source: buggySrc},
		{Source: "func {"}, // parse failure: fails its slot only
		{Source: second},
		{Source: buggySrc}, // duplicate of item 0: coalesced or cache-served
	}})
	if status != http.StatusOK {
		t.Fatalf("batch status = %d", status)
	}
	if len(br.Items) != 4 {
		t.Fatalf("items = %d, want 4", len(br.Items))
	}
	if br.Completed != 3 || br.Failed != 1 {
		t.Fatalf("tally = %d completed / %d failed, want 3/1", br.Completed, br.Failed)
	}
	for _, i := range []int{0, 2, 3} {
		if br.Items[i].Status != string(JobDone) {
			t.Errorf("item %d = %+v, want done", i, br.Items[i])
		}
	}
	if br.Items[1].Status != string(JobFailed) || br.Items[1].Error == "" {
		t.Errorf("item 1 = %+v, want failed with error detail", br.Items[1])
	}
	// Order is the request order: items 0 and 3 share a key, item 2 differs.
	if br.Items[0].CacheKey != br.Items[3].CacheKey {
		t.Error("duplicate items landed on different cache keys")
	}
	if br.Items[0].CacheKey == br.Items[2].CacheKey {
		t.Error("distinct items share a cache key")
	}
	if compactJSON(t, br.Items[0].Result) != compactJSON(t, br.Items[3].Result) {
		t.Error("duplicate items returned different result bytes")
	}

	// The batch envelope shows up in the metrics.
	_, body := getJSON(t, ts.URL+"/metrics")
	for _, want := range []string{
		"canaryd_batch_requests_total 1",
		"canaryd_batch_items_total 4",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	_ = s
}

// TestBatchValidation covers the envelope-level 400 surface: mixing the
// single and batch forms, async batches, empty items, and oversized
// batches are rejected before any work is admitted.
func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	cases := []AnalyzeRequest{
		{Source: buggySrc, Items: []AnalyzeItem{{Source: buggySrc}}},
		{Async: true, Items: []AnalyzeItem{{Source: buggySrc}}},
		{Items: []AnalyzeItem{{Source: buggySrc}, {}}},
		{Items: make([]AnalyzeItem, api.MaxBatchItems+1)},
	}
	for i := range cases {
		for j := range cases[i].Items {
			if cases[i].Items[j].Source == "" && i == 3 {
				cases[i].Items[j].Source = "func main() { }"
			}
		}
		body, err := json.Marshal(cases[i])
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d status = %d, want 400", i, resp.StatusCode)
		}
	}
}

// TestHealthzDetail checks the machine-readable readiness report: the
// JSON form carries node identity and queue observables a router needs to
// distinguish a saturated node from a down one, while the plain-text form
// stays a bare "ok".
func TestHealthzDetail(t *testing.T) {
	_, ts := newTestServer(t, Config{NodeID: "node-test-1", QueueDepth: 7})

	code, body := getJSON(t, ts.URL+"/healthz?format=json")
	if code != http.StatusOK {
		t.Fatalf("healthz json status = %d", code)
	}
	var h api.Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz is not JSON: %v (%s)", err, body)
	}
	if h.Status != "ok" || h.NodeID != "node-test-1" || h.QueueCapacity != 7 {
		t.Fatalf("health = %+v", h)
	}
	if h.Saturated() {
		t.Fatalf("idle server reports saturated: %+v", h)
	}

	// The Accept header selects JSON too.
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("Accept: application/json got Content-Type %q", ct)
	}

	// Plain text stays plain.
	code, body = getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("plain healthz = %d %q", code, body)
	}
}

// TestCacheGetEndpoint checks the peer cache tier's read side: a stored
// result ships in the diskstore entry framing (decodable with the
// standard decoder, payload byte-identical to the job's result), misses
// and unknown namespaces are 404, malformed keys 400.
func TestCacheGetEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, jr := postAnalyze(t, ts.URL, AnalyzeRequest{Source: buggySrc})
	if status != http.StatusOK || jr.Status != string(JobDone) {
		t.Fatalf("seed submission = %d %+v", status, jr)
	}

	code, body := getJSON(t, ts.URL+"/v1/cache/result/"+jr.CacheKey)
	if code != http.StatusOK {
		t.Fatalf("cache get status = %d: %s", code, body)
	}
	payload, ok := diskstore.DecodeEntry(body)
	if !ok {
		t.Fatal("cache entry does not decode with the diskstore framing")
	}
	if compactJSON(t, payload) != compactJSON(t, jr.Result) {
		t.Fatal("cache entry payload differs from the job result")
	}

	missKey := strings.Repeat("0", 64)
	if code, _ := getJSON(t, ts.URL+"/v1/cache/result/"+missKey); code != http.StatusNotFound {
		t.Errorf("miss status = %d, want 404", code)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/cache/result/zzzz"); code != http.StatusBadRequest {
		t.Errorf("malformed key status = %d, want 400", code)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/cache/bogus/"+jr.CacheKey); code != http.StatusNotFound {
		t.Errorf("unknown namespace status = %d, want 404", code)
	}

	_, metrics := getJSON(t, ts.URL+"/metrics")
	for _, want := range []string{
		"canaryd_peer_cache_get_hits_total 1",
		"canaryd_peer_cache_get_misses_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// peerSelfFor picks a self URL such that owner owns key in the two-node
// ring {owner, self}: rendezvous placement is a property of the pair, so
// the test walks candidate names until the placement it needs holds.
func peerSelfFor(t *testing.T, owner string, key string) string {
	t.Helper()
	k, ok := cache.ParseKey(key)
	if !ok {
		t.Fatalf("bad key %q", key)
	}
	for i := 0; i < 64; i++ {
		self := fmt.Sprintf("http://self-%d.invalid", i)
		if fleet.NewRing([]string{owner, self}).Owner(k) == owner {
			return self
		}
	}
	t.Fatal("no self candidate makes the peer the owner")
	return ""
}

// TestPeerCacheTier runs two in-process servers: A computes a result,
// then B — configured with A as a fleet peer owning the key — serves the
// same submission from A's cache without computing, byte-identically.
func TestPeerCacheTier(t *testing.T) {
	_, tsA := newTestServer(t, Config{})

	status, cold := postAnalyze(t, tsA.URL, AnalyzeRequest{Source: buggySrc})
	if status != http.StatusOK || cold.Status != string(JobDone) {
		t.Fatalf("seed on A = %d %+v", status, cold)
	}

	self := peerSelfFor(t, tsA.URL, cold.CacheKey)
	sB, tsB := newTestServer(t, Config{
		Peers:    []string{tsA.URL, self},
		PeerSelf: self,
	})

	status, warm := postAnalyze(t, tsB.URL, AnalyzeRequest{Source: buggySrc})
	if status != http.StatusOK || warm.Status != string(JobDone) {
		t.Fatalf("warm on B = %d %+v", status, warm)
	}
	if !warm.Cached {
		t.Fatalf("B should have served the peer copy as cached: %+v", warm)
	}
	if compactJSON(t, warm.Result) != compactJSON(t, cold.Result) {
		t.Fatal("peer-served result differs from the origin bytes")
	}
	stats := sB.peers.Stats()
	if stats.Fetches != 1 || stats.Hits != 1 {
		t.Fatalf("peer stats = %+v, want one fetch, one hit", stats)
	}

	// A repeat on B is now a plain local cache hit: no second fetch.
	status, again := postAnalyze(t, tsB.URL, AnalyzeRequest{Source: buggySrc})
	if status != http.StatusOK || !again.Cached {
		t.Fatalf("repeat on B = %d %+v", status, again)
	}
	if got := sB.peers.Stats().Fetches; got != 1 {
		t.Fatalf("repeat went back to the network: fetches = %d", got)
	}

	_, metrics := getJSON(t, tsB.URL+"/metrics")
	for _, want := range []string{
		"canaryd_peer_jobs_served_total 1",
		"canaryd_peer_hits_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestPeerFetchDegradesToLocalCompute arms the peer-fetch failpoint and
// proves the worker computes locally instead of failing the job: the
// peer tier can cost latency, never correctness.
func TestPeerFetchDegradesToLocalCompute(t *testing.T) {
	_, tsA := newTestServer(t, Config{})
	status, cold := postAnalyze(t, tsA.URL, AnalyzeRequest{Source: buggySrc})
	if status != http.StatusOK {
		t.Fatalf("seed on A = %d", status)
	}

	self := peerSelfFor(t, tsA.URL, cold.CacheKey)
	sB, tsB := newTestServer(t, Config{
		Peers:    []string{tsA.URL, self},
		PeerSelf: self,
	})

	if err := failpoint.Enable(failpoint.SitePeerFetch, "error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Reset()

	status, jr := postAnalyze(t, tsB.URL, AnalyzeRequest{Source: buggySrc})
	if status != http.StatusOK || jr.Status != string(JobDone) {
		t.Fatalf("submission under peer fault = %d %+v", status, jr)
	}
	if jr.Cached {
		t.Fatal("peer fault should have forced a local compute")
	}
	// Timings differ across runs; the analysis content must not.
	if stripTimings(t, jr.Result) != stripTimings(t, cold.Result) {
		t.Fatal("locally computed result differs from the origin")
	}
	stats := sB.peers.Stats()
	if stats.Errors == 0 {
		t.Fatalf("injected fault not counted: %+v", stats)
	}
	if stats.Fetches != 0 {
		t.Fatalf("injected fault still touched the network: %+v", stats)
	}
}

// TestInFlightCoalescing submits the same source twice while the first
// job is still running and expects the second submission to join the
// live job instead of queueing a duplicate.
func TestInFlightCoalescing(t *testing.T) {
	release := make(chan struct{})
	s, err := New(Config{MaxConcurrent: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.jobStartHook = func(*Job) { <-release }
	t.Cleanup(func() { drainServer(t, s) })

	j1, err := s.Submit(buggySrc, canary.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1)
	j2, err := s.Submit(buggySrc, canary.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatal("identical in-flight submissions did not coalesce")
	}
	if got := s.metrics.coalesced.Load(); got != 1 {
		t.Fatalf("coalesced counter = %d, want 1", got)
	}
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("coalesced submission still queued: depth = %d", d)
	}

	close(release)
	<-j1.Done()
	if j1.State() != JobDone {
		t.Fatalf("job state = %s", j1.State())
	}

	// After completion the key leaves the in-flight table; a repeat is a
	// cache hit, not a join.
	j3, err := s.Submit(buggySrc, canary.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	<-j3.Done()
	if j3 == j1 {
		t.Fatal("completed job still coalescing new submissions")
	}
	if _, cached, _ := j3.Result(); !cached {
		t.Fatal("post-completion repeat should be cache-served")
	}
}

// newJoinServer starts a server with dynamic membership over a real
// listener; the listener exists first so the advertised URL is real.
// kill() makes the endpoint vanish like SIGKILL (everything 503s).
func newJoinServer(t *testing.T, seeds []string, interval time.Duration) (*Server, string, func()) {
	t.Helper()
	var h atomic.Pointer[http.Handler]
	dispatch := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hp := h.Load(); hp != nil {
			(*hp).ServeHTTP(w, r)
			return
		}
		http.Error(w, "down", http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(dispatch)
	t.Cleanup(ts.Close)
	if len(seeds) == 0 {
		seeds = []string{ts.URL} // self-seed: skipped in the table, membership on
	}
	s, err := New(Config{
		Join:           append([]string(nil), seeds...),
		Advertise:      ts.URL,
		GossipInterval: interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	handler := s.Handler()
	h.Store(&handler)
	killed := false
	kill := func() {
		if killed {
			return
		}
		killed = true
		h.Store(nil)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}
	t.Cleanup(kill)
	return s, ts.URL, kill
}

// TestMembershipPeerTier is the dynamic twin of TestPeerCacheTier: two
// workers discover each other purely through gossip (no -peers list),
// the peer cache ring follows, a result computed on one is served to
// the other as a peer hit byte-identically — and when the origin dies,
// the survivor's ring heals to itself and it keeps computing.
func TestMembershipPeerTier(t *testing.T) {
	const interval = 20 * time.Millisecond
	sA, urlA, killA := newJoinServer(t, nil, interval)
	sB, urlB, _ := newJoinServer(t, []string{urlA}, interval)

	waitRing := func(s *Server, want int, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for s.peers.Ring().Len() != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: peer ring stuck at %d, want %d", what, s.peers.Ring().Len(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitRing(sA, 2, "A converging")
	waitRing(sB, 2, "B converging")

	// A source whose shard owner is A in the learned two-node ring.
	src := buggySrc
	for i := 0; ; i++ {
		key := canary.SubmissionKey(src, canary.DefaultOptions())
		if fleet.NewRing([]string{urlA, urlB}).Owner(key) == urlA {
			break
		}
		if i > 256 {
			t.Fatal("no padded source lands on A")
		}
		src = fmt.Sprintf("%s\nfunc pad%d() { p = malloc(); }", buggySrc, i)
	}

	status, cold := postAnalyze(t, urlA, AnalyzeRequest{Source: src})
	if status != http.StatusOK || cold.Status != string(JobDone) {
		t.Fatalf("seed on A = %d %+v", status, cold)
	}
	status, warm := postAnalyze(t, urlB, AnalyzeRequest{Source: src})
	if status != http.StatusOK || warm.Status != string(JobDone) {
		t.Fatalf("warm on B = %d %+v", status, warm)
	}
	if !warm.Cached {
		t.Fatalf("B should have peer-served the gossip-learned owner's copy: %+v", warm)
	}
	if compactJSON(t, warm.Result) != compactJSON(t, cold.Result) {
		t.Fatal("peer-served result differs from the origin bytes")
	}
	if got := sB.peers.Stats().Hits; got != 1 {
		t.Fatalf("peer hits on B = %d, want 1", got)
	}

	// Kill A. B's ring must heal to itself alone, and B must keep
	// answering fresh submissions (local compute, no peer in sight).
	killA()
	waitRing(sB, 1, "B healing after A's death")
	fresh := src + "\nfunc afterDeath() { q = malloc(); }"
	status, jr := postAnalyze(t, urlB, AnalyzeRequest{Source: fresh})
	if status != http.StatusOK || jr.Status != string(JobDone) {
		t.Fatalf("post-death submission on B = %d %+v", status, jr)
	}
	if jr.Cached {
		t.Fatal("fresh source cannot be cache-served")
	}
}
