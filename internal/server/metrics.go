package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"canary/internal/pipeline"
)

// histogram is a fixed-bucket cumulative latency histogram in the
// Prometheus text exposition style: bucket counters are monotonically
// increasing and keyed by an inclusive upper bound ("le"), with a +Inf
// overflow bucket, a sum, and a count. All operations are lock-free.
type histogram struct {
	bounds []float64       // upper bounds in seconds, ascending
	counts []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	sumUS  atomic.Uint64   // sum of observations in microseconds
	count  atomic.Uint64
}

// stageBuckets covers the daemon's expected latency range: sub-millisecond
// cache hits up to multi-second whole-program analyses.
func stageBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	secs := d.Seconds()
	i := len(h.bounds)
	for j, b := range h.bounds {
		if secs <= b {
			i = j
			break
		}
	}
	h.counts[i].Add(1)
	h.sumUS.Add(uint64(d.Microseconds()))
	h.count.Add(1)
}

// writeTo emits the histogram as name_bucket{stage="...",le="..."} lines
// plus the _sum and _count series.
func (h *histogram) writeTo(w io.Writer, name, stage string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{stage=%q,le=%q} %d\n", name, stage, fmt.Sprintf("%g", b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{stage=%q,le=\"+Inf\"} %d\n", name, stage, cum)
	fmt.Fprintf(w, "%s_sum{stage=%q} %.6f\n", name, stage, float64(h.sumUS.Load())/1e6)
	fmt.Fprintf(w, "%s_count{stage=%q} %d\n", name, stage, h.count.Load())
}

// metrics aggregates the daemon's observable state. Job counters are
// owned here; cache and interner counters are read from their sources at
// scrape time (see Server.writeMetrics).
type metrics struct {
	accepted    atomic.Uint64 // submissions admitted (queued or cache-served)
	completed   atomic.Uint64 // jobs finished with a result (incl. cache-served)
	failed      atomic.Uint64 // jobs finished with an error (incl. deadline)
	rejected    atomic.Uint64 // submissions refused (queue full or draining)
	cacheServed atomic.Uint64 // completions answered by the content store
	running     atomic.Int64  // jobs currently inside the analysis pipeline

	// The fleet-facing counters: batch envelope traffic, submissions
	// answered by an already-in-flight job (single-flight dedup), local
	// misses served from a peer's cache, and peer cache GETs this node
	// answered (hit and miss sides).
	batchRequests  atomic.Uint64
	batchItems     atomic.Uint64
	coalesced      atomic.Uint64
	peerHits       atomic.Uint64
	peerServed     atomic.Uint64
	peerMissServed atomic.Uint64

	// trivialSolves accumulates CheckStats.TrivialSolves across jobs: SMT
	// queries settled by the pre-CNF constant-folding/unit-propagation fast
	// path. (Summary and verdict store counters live on the shared Session
	// and are read at scrape time.)
	trivialSolves atomic.Uint64

	// The governance observables, accumulated from each completed job's
	// stats: per-dimension budget exhaustions (keyed by the pipeline
	// registry's budget dimensions) and panics recovered at the worker or
	// checker level. Session-level recoveries and quarantines live on the
	// shared Session and are added at scrape time.
	budget          map[string]*atomic.Uint64
	panicsRecovered atomic.Uint64

	// The live-session counters: opens, explicit closes, TTL and LRU
	// evictions, edit batches (accepted / refused / representation-only
	// fast path). The open-session gauge is read from the registry at
	// scrape time; per-edit latency lands in editLatency.
	sessionsOpened     atomic.Uint64
	sessionsClosed     atomic.Uint64
	sessionsEvictedTTL atomic.Uint64
	sessionsEvictedLRU atomic.Uint64
	sessionEdits       atomic.Uint64
	sessionEditsRej    atomic.Uint64
	sessionTrivial     atomic.Uint64
	editLatency        *histogram

	// Per-stage latency histograms, one per pipeline registry stage
	// (parse/lower/pta/datadep/interference/mhp/vfg/check), fed from each
	// completed job's Result.Trace spans; "total" is the job's wall time
	// inside the worker (whole pipeline + encode).
	stage map[string]*histogram
	total *histogram
}

func newMetrics() *metrics {
	m := &metrics{
		budget:      make(map[string]*atomic.Uint64),
		stage:       make(map[string]*histogram),
		total:       newHistogram(stageBuckets()),
		editLatency: newHistogram(stageBuckets()),
	}
	for _, dim := range pipeline.BudgetDimensions() {
		m.budget[dim] = new(atomic.Uint64)
	}
	for _, st := range pipeline.Stages() {
		m.stage[st.MetricsLabel()] = newHistogram(stageBuckets())
	}
	return m
}
