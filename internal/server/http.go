package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"canary"
)

// defaultMaxRequestBytes bounds an /v1/analyze body when the operator
// sets no Config.MaxRequestBytes (sources are small programs, not
// binaries).
const defaultMaxRequestBytes = 16 << 20

// AnalyzeRequest is the POST /v1/analyze body.
type AnalyzeRequest struct {
	// Source is the program text in the canary input language. Required.
	Source string `json:"source"`
	// Async makes the call return 202 immediately with a job ID to poll
	// at GET /v1/jobs/{id}; the default waits for the verdict inline.
	Async bool `json:"async,omitempty"`
	// TimeoutMS bounds this job's analysis; 0 (and anything above the
	// server's job-timeout cap) means the cap.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Options patches the server's base analysis options field by field.
	Options *OptionsPatch `json:"options,omitempty"`
}

// OptionsPatch is a partial canary.Options: nil fields keep the server's
// base configuration. Field names mirror the library options.
type OptionsPatch struct {
	Entry              *string  `json:"entry,omitempty"`
	UnrollDepth        *int     `json:"unroll_depth,omitempty"`
	InlineDepth        *int     `json:"inline_depth,omitempty"`
	EnableMHP          *bool    `json:"enable_mhp,omitempty"`
	GuardCap           *int     `json:"guard_cap,omitempty"`
	Checkers           []string `json:"checkers,omitempty"`
	RequireInterThread *bool    `json:"require_inter_thread,omitempty"`
	LockOrder          *bool    `json:"lock_order,omitempty"`
	CondVarOrder       *bool    `json:"cond_var_order,omitempty"`
	MemoryModel        *string  `json:"memory_model,omitempty"`
	FactPropagation    *bool    `json:"fact_propagation,omitempty"`
	Workers            *int     `json:"workers,omitempty"`
	CubeAndConquer     *bool    `json:"cube_and_conquer,omitempty"`
	MaxConflicts       *int64   `json:"max_conflicts,omitempty"`
	// The step-counted stage budgets (canary.Budgets); exhaustion
	// degrades the result to inconclusive verdicts instead of failing.
	MaxFixpointRounds *int `json:"max_fixpoint_rounds,omitempty"`
	MaxDFSSteps       *int `json:"max_dfs_steps,omitempty"`
	MaxFormulaNodes   *int `json:"max_formula_nodes,omitempty"`
}

func (p *OptionsPatch) apply(opt canary.Options) canary.Options {
	if p == nil {
		return opt
	}
	if p.Entry != nil {
		opt.Entry = *p.Entry
	}
	if p.UnrollDepth != nil {
		opt.UnrollDepth = *p.UnrollDepth
	}
	if p.InlineDepth != nil {
		opt.InlineDepth = *p.InlineDepth
	}
	if p.EnableMHP != nil {
		opt.EnableMHP = *p.EnableMHP
	}
	if p.GuardCap != nil {
		opt.GuardCap = *p.GuardCap
	}
	if len(p.Checkers) > 0 {
		opt.Checkers = p.Checkers
	}
	if p.RequireInterThread != nil {
		opt.RequireInterThread = *p.RequireInterThread
	}
	if p.LockOrder != nil {
		opt.LockOrder = *p.LockOrder
	}
	if p.CondVarOrder != nil {
		opt.CondVarOrder = *p.CondVarOrder
	}
	if p.MemoryModel != nil {
		opt.MemoryModel = *p.MemoryModel
	}
	if p.FactPropagation != nil {
		opt.FactPropagation = *p.FactPropagation
	}
	if p.Workers != nil {
		opt.Workers = *p.Workers
	}
	if p.CubeAndConquer != nil {
		opt.CubeAndConquer = *p.CubeAndConquer
	}
	if p.MaxConflicts != nil {
		opt.MaxConflicts = *p.MaxConflicts
	}
	if p.MaxFixpointRounds != nil {
		opt.Budgets.MaxFixpointRounds = *p.MaxFixpointRounds
	}
	if p.MaxDFSSteps != nil {
		opt.Budgets.MaxDFSSteps = *p.MaxDFSSteps
	}
	if p.MaxFormulaNodes != nil {
		opt.Budgets.MaxFormulaNodes = *p.MaxFormulaNodes
	}
	return opt
}

// JobResponse is the JSON rendering of a job for both /v1/analyze and
// /v1/jobs/{id}.
type JobResponse struct {
	JobID    string          `json:"job_id"`
	Status   JobState        `json:"status"`
	CacheKey string          `json:"cache_key"`
	Cached   bool            `json:"cached,omitempty"`
	Error    string          `json:"error,omitempty"`
	Elapsed  float64         `json:"elapsed_ms,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

func responseOf(v jobView) JobResponse {
	resp := JobResponse{
		JobID:    v.ID,
		Status:   v.State,
		CacheKey: v.Key.String(),
		Cached:   v.Cached,
		Error:    v.ErrMsg,
	}
	if v.Elapsed > 0 {
		resp.Elapsed = float64(v.Elapsed.Microseconds()) / 1000
	}
	if len(v.Result) > 0 {
		resp.Result = json.RawMessage(v.Result)
	}
	return resp
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/analyze   submit a program (sync by default, async opt-in)
//	GET  /v1/jobs/{id} status/result of a submitted job
//	GET  /healthz      liveness — 200 "ok", 503 "draining"
//	GET  /metrics      plain-text counters and histograms
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, "missing required field: source")
		return
	}
	opt := req.Options.apply(s.cfg.Options)
	timeout := s.cfg.JobTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}

	job, err := s.Submit(req.Source, opt, timeout)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	if req.Async {
		writeJSON(w, http.StatusAccepted, responseOf(job.view()))
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		// The client gave up; the job keeps running and stays pollable.
		writeJSON(w, http.StatusAccepted, responseOf(job.view()))
		return
	}
	v := job.view()
	status := http.StatusOK
	if v.State == JobFailed {
		status = http.StatusUnprocessableEntity
		if v.TimedOut {
			status = http.StatusGatewayTimeout
		}
	}
	writeJSON(w, status, responseOf(v))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, responseOf(job.view()))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.writeMetrics(w)
}
