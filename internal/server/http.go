package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"canary"
	"canary/internal/api"
	"canary/internal/cache"
	"canary/internal/diskstore"
)

// defaultMaxRequestBytes bounds an /v1/analyze body when the operator
// sets no Config.MaxRequestBytes (sources are small programs, not
// binaries).
const defaultMaxRequestBytes = 16 << 20

// The wire types are shared with the fleet router (internal/api); the
// aliases keep this package's public surface stable.
type (
	// AnalyzeRequest is the POST /v1/analyze body (single or batch form).
	AnalyzeRequest = api.AnalyzeRequest
	// AnalyzeItem is one submission of a batch request.
	AnalyzeItem = api.AnalyzeItem
	// OptionsPatch is a partial canary.Options overlay.
	OptionsPatch = api.OptionsPatch
	// JobResponse is the JSON rendering of a job.
	JobResponse = api.JobResponse
	// BatchResponse is the batch /v1/analyze response body.
	BatchResponse = api.BatchResponse
)

func responseOf(v jobView) JobResponse {
	resp := JobResponse{
		JobID:    v.ID,
		Status:   string(v.State),
		CacheKey: v.Key.String(),
		Cached:   v.Cached,
		Error:    v.ErrMsg,
	}
	if v.Elapsed > 0 {
		resp.Elapsed = float64(v.Elapsed.Microseconds()) / 1000
	}
	if len(v.Result) > 0 {
		resp.Result = json.RawMessage(v.Result)
	}
	return resp
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/analyze          submit one program (sync by default, async
//	                          opt-in) or a batch of up to api.MaxBatchItems
//	                          programs (always sync, per-item results)
//	GET  /v1/jobs/{id}        status/result of a submitted job
//	GET  /v1/cache/{ns}/{key} peer cache tier: the stored entry in the
//	                          diskstore wire format, or 404
//	GET  /healthz             liveness — plain text for humans, readiness
//	                          detail with ?format=json (or Accept: json)
//	GET  /metrics             plain-text counters and histograms
//
// plus the live-session surface (sessions.go):
//
//	POST   /v1/sessions               open a long-lived edit session
//	POST   /v1/sessions/{id}/edits    apply an edit batch, get the delta
//	GET    /v1/sessions/{id}/findings current findings snapshot
//	DELETE /v1/sessions/{id}          close the session
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionOpen)
	mux.HandleFunc("POST /v1/sessions/{id}/edits", s.handleSessionEdits)
	mux.HandleFunc("GET /v1/sessions/{id}/findings", s.handleSessionFindings)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/cache/{ns}/{key}", s.handleCacheGet)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.membership != nil {
		mux.HandleFunc("/v1/gossip", s.membership.ServeGossip)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	req, err := api.ParseAnalyzeRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Items) > 0 {
		s.handleBatch(w, r, req)
		return
	}

	opt := req.Options.Apply(s.cfg.Options)
	timeout := s.cfg.JobTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}

	job, err := s.Submit(req.Source, opt, timeout)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	if req.Async {
		writeJSON(w, http.StatusAccepted, responseOf(job.view()))
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		// The client gave up; the job keeps running and stays pollable.
		writeJSON(w, http.StatusAccepted, responseOf(job.view()))
		return
	}
	v := job.view()
	status := http.StatusOK
	if v.State == JobFailed {
		status = http.StatusUnprocessableEntity
		if v.TimedOut {
			status = http.StatusGatewayTimeout
		}
	}
	writeJSON(w, status, responseOf(v))
}

// handleBatch runs every item of a batch request to a terminal state and
// answers 200 with per-item results in request order. Partial-failure
// semantics: one item's rejection, analysis error, or timeout is recorded
// in its own slot and never fails its siblings; the whole response fails
// (non-200) only when the envelope itself was unacceptable, which
// handleAnalyze already ruled out.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, req *AnalyzeRequest) {
	s.metrics.batchRequests.Add(1)
	s.metrics.batchItems.Add(uint64(len(req.Items)))

	// The envelope-level options patch applies to every item; an item's
	// own patch overlays it. The router computes routing keys with exactly
	// this layering, which is what keeps one content address per item
	// across both tiers.
	base := req.Options.Apply(s.cfg.Options)

	resp := BatchResponse{Items: make([]JobResponse, len(req.Items))}
	var wg sync.WaitGroup
	for i := range req.Items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp.Items[i] = s.runBatchItem(r.Context(), base, req.Items[i])
		}(i)
	}
	wg.Wait()
	resp.Tally()
	writeJSON(w, http.StatusOK, resp)
}

// runBatchItem submits one batch item and waits it to a terminal state.
// Queue-full is absorbed by bounded in-handler retries (the queue drains
// at analysis speed; a batch is a willing bulk client, so it waits
// instead of bouncing) until the request context gives up.
func (s *Server) runBatchItem(ctx context.Context, base canary.Options, it AnalyzeItem) JobResponse {
	opt := it.Options.Apply(base)
	timeout := s.cfg.JobTimeout
	if it.TimeoutMS > 0 {
		timeout = time.Duration(it.TimeoutMS) * time.Millisecond
	}
	backoff := 2 * time.Millisecond
	var job *Job
	for {
		var err error
		job, err = s.Submit(it.Source, opt, timeout)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrQueueFull) {
			return JobResponse{Status: string(JobFailed), Error: err.Error()}
		}
		select {
		case <-ctx.Done():
			return JobResponse{Status: string(JobFailed), Error: ErrQueueFull.Error()}
		case <-time.After(backoff):
		}
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
	select {
	case <-job.Done():
	case <-ctx.Done():
		// The client gave up on the whole batch; report the live state.
	}
	return responseOf(job.view())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, responseOf(job.view()))
}

// handleCacheGet is the peer cache tier's read side: the entry under
// (namespace, key), framed in the diskstore entry wire format — the very
// bytes a disk-backed store holds, so a fleet peer can decode them with
// the decoder it already has. A miss is 404; there is no error state a
// peer could act on differently, so everything else degrades to 404 too.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	ns := r.PathValue("ns")
	k, ok := cache.ParseKey(r.PathValue("key"))
	if !ok {
		writeError(w, http.StatusBadRequest, "malformed cache key %q", r.PathValue("key"))
		return
	}
	var raw []byte
	switch ns {
	case "result":
		// Served through the tiered store (memory first, then disk), then
		// framed — EncodeEntry of a content-addressed value is byte-identical
		// to its on-disk entry, so the wire format matches either way.
		if v, ok := s.cache.Get(k); ok {
			raw = diskstore.EncodeEntry(v)
		}
	case "summary", "verdict":
		// The warm-session namespaces exist only disk-backed; their entry
		// files ship verbatim.
		if s.disk != nil {
			raw, _ = s.disk.NS(ns).GetRaw(k)
		}
	default:
		writeError(w, http.StatusNotFound, "unknown cache namespace %q", ns)
		return
	}
	if raw == nil {
		s.metrics.peerMissServed.Add(1)
		writeError(w, http.StatusNotFound, "no entry for %s/%s", ns, k)
		return
	}
	s.metrics.peerServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(raw)
}

// Health gathers the machine-readable readiness report: enough for a
// router to distinguish a saturated node from a down one, and for
// operators to see what the node is doing.
func (s *Server) Health() api.Health {
	h := api.Health{
		Status:        "ok",
		NodeID:        s.cfg.NodeID,
		QueueDepth:    s.QueueDepth(),
		QueueCapacity: s.cfg.QueueDepth,
		Running:       int(s.metrics.running.Load()),
		CacheDir:      s.cfg.CacheDir,
		CacheDirOK:    true,
	}
	s.mu.Lock()
	if s.draining {
		h.Status = "draining"
	}
	h.InFlight = len(s.inflight)
	s.mu.Unlock()
	if s.cfg.CacheDir != "" {
		if _, err := os.Stat(s.cfg.CacheDir); err != nil {
			h.CacheDirOK = false
		}
	}
	if s.membership != nil {
		h.MembersAlive = len(s.membership.Alive(""))
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	status := http.StatusOK
	if h.Status == "draining" {
		status = http.StatusServiceUnavailable
	}
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, status, h)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	fmt.Fprintln(w, h.Status)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.writeMetrics(w)
}
