package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"canary/internal/api"
)

func doJSON(t *testing.T, method, url string, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func openSession(t *testing.T, url, body string) (int, api.DeltaResponse, []byte) {
	t.Helper()
	status, raw := doJSON(t, http.MethodPost, url+"/v1/sessions", body)
	var dr api.DeltaResponse
	if status == http.StatusCreated {
		if err := json.Unmarshal(raw, &dr); err != nil {
			t.Fatalf("decoding open response: %v\n%s", err, raw)
		}
	}
	return status, dr, raw
}

func errCode(t *testing.T, raw []byte) string {
	t.Helper()
	var er api.ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("decoding error response: %v\n%s", err, raw)
	}
	return er.Code
}

// TestSessionLifecycle is the whole edit-native loop over HTTP: open
// analyzes the initial source and answers every finding as Added; a
// comment-only edit is served without re-analysis; a bug-removing edit
// answers with the finding Resolved; the findings snapshot tracks the
// folded state; delete closes for real.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, dr, raw := openSession(t, ts.URL,
		fmt.Sprintf(`{"source":%q}`, buggySrc))
	if status != http.StatusCreated {
		t.Fatalf("open: status %d, body %s", status, raw)
	}
	if dr.SessionID == "" || dr.Seq != 0 || !dr.Reanalyzed {
		t.Fatalf("open delta malformed: %+v", dr)
	}
	if len(dr.Added) == 0 {
		t.Fatalf("open of a buggy program added no findings: %+v", dr)
	}
	base := ts.URL + "/v1/sessions/" + dr.SessionID

	// Comment-only edit: canonical source unchanged, so no analysis runs.
	status, raw = doJSON(t, http.MethodPost, base+"/edits",
		`{"edits":[{"start":13,"end":13,"text":"// reviewed\n"}]}`)
	if status != http.StatusOK {
		t.Fatalf("trivial edit: status %d, body %s", status, raw)
	}
	var d1 api.DeltaResponse
	if err := json.Unmarshal(raw, &d1); err != nil {
		t.Fatal(err)
	}
	if d1.Reanalyzed || d1.Seq != 1 || len(d1.Added) != 0 || len(d1.Resolved) != 0 {
		t.Fatalf("trivial edit was not served as representation-only: %+v", d1)
	}
	if d1.Unchanged != len(dr.Added) {
		t.Fatalf("trivial edit unchanged=%d, want %d", d1.Unchanged, len(dr.Added))
	}

	// Delete the free: the use-after-free is gone, so the delta resolves it.
	status, raw = doJSON(t, http.MethodPost, base+"/edits",
		`{"seq":1,"edits":[{"start":11,"end":12,"text":""}]}`)
	if status != http.StatusOK {
		t.Fatalf("fix edit: status %d, body %s", status, raw)
	}
	var d2 api.DeltaResponse
	if err := json.Unmarshal(raw, &d2); err != nil {
		t.Fatal(err)
	}
	if !d2.Reanalyzed || d2.Seq != 2 {
		t.Fatalf("fix edit delta malformed: %+v", d2)
	}
	if len(d2.Resolved) == 0 {
		t.Fatalf("removing the free resolved nothing: %+v", d2)
	}
	if len(d2.Invalidated) == 0 {
		t.Fatalf("fix edit invalidated no functions: %+v", d2)
	}

	// The snapshot reflects the folded state.
	status, raw = doJSON(t, http.MethodGet, base+"/findings", "")
	if status != http.StatusOK {
		t.Fatalf("findings: status %d, body %s", status, raw)
	}
	var fr api.FindingsResponse
	if err := json.Unmarshal(raw, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Seq != 2 {
		t.Fatalf("findings seq %d, want 2", fr.Seq)
	}
	want := len(dr.Added) - len(d2.Resolved) + len(d2.Added)
	if len(fr.Reports) != want {
		t.Fatalf("findings carry %d reports, want %d", len(fr.Reports), want)
	}

	status, raw = doJSON(t, http.MethodDelete, base, "")
	if status != http.StatusNoContent {
		t.Fatalf("delete: status %d, body %s", status, raw)
	}
	status, raw = doJSON(t, http.MethodGet, base+"/findings", "")
	if status != http.StatusNotFound || errCode(t, raw) != api.CodeUnknownSession {
		t.Fatalf("findings after delete: status %d code %q", status, errCode(t, raw))
	}
	status, raw = doJSON(t, http.MethodDelete, base, "")
	if status != http.StatusNotFound {
		t.Fatalf("double delete: status %d, body %s", status, raw)
	}
}

// TestSessionRejections pins the governance point: envelope abuse is
// 400 at the parser, a structurally valid but inapplicable edit is 422
// with a stable code and leaves the session untouched, and a stale seq
// is a 409 the client can recover from.
func TestSessionRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, dr, raw := openSession(t, ts.URL, fmt.Sprintf(`{"source":%q}`, buggySrc))
	if status != http.StatusCreated {
		t.Fatalf("open: status %d, body %s", status, raw)
	}
	base := ts.URL + "/v1/sessions/" + dr.SessionID

	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"zero start", `{"edits":[{"start":0,"end":1,"text":""}]}`, http.StatusBadRequest, ""},
		{"no edits", `{"edits":[]}`, http.StatusBadRequest, ""},
		{"type confusion", `{"edits":7}`, http.StatusBadRequest, ""},
		{"out of range span", `{"edits":[{"start":900,"end":901,"text":"x = 1;\n"}]}`,
			http.StatusUnprocessableEntity, api.CodeEditRejected},
		{"unparsable patch", `{"edits":[{"start":3,"end":4,"text":"func oops(\n"}]}`,
			http.StatusUnprocessableEntity, api.CodeEditRejected},
		{"stale seq", `{"seq":7,"edits":[{"start":3,"end":3,"text":"z = 1;\n"}]}`,
			http.StatusConflict, api.CodeSeqConflict},
	}
	for _, c := range cases {
		status, raw := doJSON(t, http.MethodPost, base+"/edits", c.body)
		if status != c.status {
			t.Errorf("%s: status %d, want %d (body %s)", c.name, status, c.status, raw)
			continue
		}
		if c.code != "" && errCode(t, raw) != c.code {
			t.Errorf("%s: code %q, want %q", c.name, errCode(t, raw), c.code)
		}
	}

	// None of the rejections advanced the session.
	status, raw = doJSON(t, http.MethodGet, base+"/findings", "")
	var fr api.FindingsResponse
	if err := json.Unmarshal(raw, &fr); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || fr.Seq != 0 {
		t.Fatalf("rejections moved the session: status %d seq %d", status, fr.Seq)
	}
	if len(fr.Reports) != len(dr.Added) {
		t.Fatalf("rejections changed findings: %d vs %d", len(fr.Reports), len(dr.Added))
	}
}

// TestSessionDuplicateOpenHammer races many opens of the same client-
// chosen ID: exactly one may win with 201, every loser gets the typed
// 409, and afterwards exactly one session exists. Server-minted IDs
// from a parallel burst must all be distinct (the collision check in
// newSessionIDLocked, exercised for real).
func TestSessionDuplicateOpenHammer(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"source":%q,"session_id":"ide-tab-1"}`, buggySrc)

	const racers = 8
	var wg sync.WaitGroup
	statuses := make([]int, racers)
	codes := make([]string, racers)
	for i := 0; i < racers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", body)
			statuses[i] = status
			if status == http.StatusConflict {
				codes[i] = errCode(t, raw)
			}
		}()
	}
	wg.Wait()
	won, lost := 0, 0
	for i, st := range statuses {
		switch st {
		case http.StatusCreated:
			won++
		case http.StatusConflict:
			lost++
			if codes[i] != api.CodeDuplicateSession {
				t.Errorf("loser %d: code %q, want %q", i, codes[i], api.CodeDuplicateSession)
			}
		default:
			t.Errorf("racer %d: unexpected status %d", i, st)
		}
	}
	if won != 1 || lost != racers-1 {
		t.Fatalf("duplicate open race: %d winners, %d losers (want 1, %d)", won, lost, racers-1)
	}
	if n := s.OpenSessions(); n != 1 {
		t.Fatalf("registry holds %d sessions after race, want 1", n)
	}

	// Server-minted IDs: a concurrent burst yields all-distinct IDs.
	const minted = 16
	ids := make([]string, minted)
	var wg2 sync.WaitGroup
	for i := 0; i < minted; i++ {
		i := i
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			status, dr, raw := openSession(t, ts.URL, fmt.Sprintf(`{"source":%q}`, buggySrc))
			if status != http.StatusCreated {
				t.Errorf("minted open %d: status %d body %s", i, status, raw)
				return
			}
			ids[i] = dr.SessionID
		}()
	}
	wg2.Wait()
	seen := make(map[string]bool)
	for _, id := range ids {
		if id == "" {
			continue
		}
		if seen[id] {
			t.Fatalf("server minted duplicate session id %q", id)
		}
		seen[id] = true
	}
}

// TestSessionEvictionTTLAndLRU drives both eviction paths: at the cap,
// opening one more session evicts the least recently used idle one; and
// the janitor reaps sessions idle past their TTL on its own clock.
func TestSessionEvictionTTLAndLRU(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxSessions:    2,
		SessionIdleTTL: 300 * time.Millisecond,
		SessionSweep:   20 * time.Millisecond,
	})
	open := func(id string) string {
		t.Helper()
		status, dr, raw := openSession(t, ts.URL,
			fmt.Sprintf(`{"source":%q,"session_id":%q}`, buggySrc, id))
		if status != http.StatusCreated {
			t.Fatalf("open %s: status %d body %s", id, status, raw)
		}
		return dr.SessionID
	}
	a := open("sess-a")
	time.Sleep(5 * time.Millisecond)
	b := open("sess-b")
	// Touch b so a is strictly least recently used.
	doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+b+"/findings", "")

	c := open("sess-c") // over the cap: a must go
	if status, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+a+"/findings", ""); status != http.StatusNotFound {
		t.Fatalf("LRU victim still answers: status %d body %s", status, raw)
	}
	for _, id := range []string{b, c} {
		if status, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+id+"/findings", ""); status != http.StatusOK {
			t.Fatalf("survivor %s: status %d", id, status)
		}
	}
	if _, raw := doJSON(t, http.MethodGet, ts.URL+"/metrics", ""); !strings.Contains(string(raw), "canaryd_sessions_evicted_lru_total 1") {
		t.Fatalf("metrics missing LRU eviction:\n%s", raw)
	}

	// TTL: stop touching them and let the janitor reap both.
	deadline := time.Now().Add(10 * time.Second)
	for s.OpenSessions() > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := s.OpenSessions(); n != 0 {
		t.Fatalf("janitor left %d sessions past TTL", n)
	}
	if _, raw := doJSON(t, http.MethodGet, ts.URL+"/metrics", ""); !strings.Contains(string(raw), "canaryd_sessions_evicted_ttl_total 2") {
		t.Fatalf("metrics missing TTL evictions:\n%s", raw)
	}
}

// TestSessionDrainRefusesOpens: a draining daemon refuses new sessions
// with 503 (and closes the ones it holds), same contract as /v1/analyze.
func TestSessionDrainRefusesOpens(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	status, dr, raw := openSession(t, ts.URL, fmt.Sprintf(`{"source":%q}`, buggySrc))
	if status != http.StatusCreated {
		t.Fatalf("open: status %d body %s", status, raw)
	}
	_ = dr
	s.BeginDrain()
	if status, _, _ := openSession(t, ts.URL, fmt.Sprintf(`{"source":%q}`, buggySrc)); status != http.StatusServiceUnavailable {
		t.Fatalf("open while draining: status %d, want 503", status)
	}
}
