package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"canary"
	"canary/internal/pipeline"
	"canary/internal/workload"
)

// buggySrc is a small program with one inter-thread use-after-free.
const buggySrc = `
func main() {
  x = malloc();
  fork(t, worker, x);
  c = *x;
  print(*c);
}
func worker(y) {
  b = malloc();
  *y = b;
  free(b);
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postAnalyze(t *testing.T, url string, req AnalyzeRequest) (int, JobResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, jr
}

func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func compactJSON(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// stripTimings drops the wall-clock duration fields (and the trace spans
// carrying them) from a serialized canary.Result so two runs of the same
// submission compare equal: timings are the one part of the result that
// is not deterministic.
func stripTimings(t *testing.T, raw []byte) string {
	t.Helper()
	var m map[string]interface{}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if vfg, ok := m["VFG"].(map[string]interface{}); ok {
		delete(vfg, "BuildTime")
		delete(vfg, "ParallelBuildTime")
	}
	if chk, ok := m["Check"].(map[string]interface{}); ok {
		delete(chk, "SearchTime")
		delete(chk, "SolveTime")
	}
	delete(m, "Trace")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestSyncAnalyzeMatchesLibraryAndCache is the acceptance path: a cold
// sync submission returns the library's exact result, and a warm repeat is
// served from the content store byte-identically with the hit counter up.
func TestSyncAnalyzeMatchesLibraryAndCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	status, cold := postAnalyze(t, ts.URL, AnalyzeRequest{Source: buggySrc})
	if status != http.StatusOK {
		t.Fatalf("cold status = %d (%+v)", status, cold)
	}
	if cold.Status != string(JobDone) || cold.Cached {
		t.Fatalf("cold = %+v", cold)
	}

	// The served result must be the library's result (modulo wall-clock
	// timing fields, the only nondeterministic part).
	res, err := canary.Analyze(buggySrc, canary.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if got := stripTimings(t, cold.Result); got != stripTimings(t, want) {
		t.Fatalf("cold result differs from library:\n got: %s\nwant: %s", got, want)
	}

	hits0, _, _ := s.CacheStats()
	status, warm := postAnalyze(t, ts.URL, AnalyzeRequest{Source: buggySrc})
	if status != http.StatusOK || warm.Status != string(JobDone) {
		t.Fatalf("warm = %d %+v", status, warm)
	}
	if !warm.Cached {
		t.Fatal("warm repeat should be served from the cache")
	}
	if hits1, _, _ := s.CacheStats(); hits1 != hits0+1 {
		t.Fatalf("cache hits %d -> %d, want +1", hits0, hits1)
	}
	if warm.CacheKey != cold.CacheKey {
		t.Fatalf("cache keys differ: %s vs %s", cold.CacheKey, warm.CacheKey)
	}
	if compactJSON(t, warm.Result) != compactJSON(t, cold.Result) {
		t.Fatal("warm result is not byte-identical to the cold run")
	}

	// A cosmetic reformat (CRLF, trailing blanks) still hits.
	reformatted := strings.ReplaceAll(buggySrc, "\n", "   \r\n")
	status, re := postAnalyze(t, ts.URL, AnalyzeRequest{Source: reformatted})
	if status != http.StatusOK || !re.Cached {
		t.Fatalf("reformatted submission should hit the cache: %d %+v", status, re)
	}

	// Different options miss.
	tso := "tso"
	status, other := postAnalyze(t, ts.URL, AnalyzeRequest{
		Source:  buggySrc,
		Options: &OptionsPatch{MemoryModel: &tso},
	})
	if status != http.StatusOK || other.Cached {
		t.Fatalf("different options must not share a cache entry: %d %+v", status, other)
	}
}

// TestAsyncJobLifecycle submits asynchronously and polls the job to done.
func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, acc := postAnalyze(t, ts.URL, AnalyzeRequest{Source: buggySrc, Async: true})
	if status != http.StatusAccepted {
		t.Fatalf("async submit status = %d", status)
	}
	if acc.JobID == "" {
		t.Fatal("missing job_id")
	}

	deadline := time.Now().Add(30 * time.Second)
	var jr JobResponse
	for {
		code, body := getJSON(t, ts.URL+"/v1/jobs/"+acc.JobID)
		if code != http.StatusOK {
			t.Fatalf("job poll status = %d: %s", code, body)
		}
		if err := json.Unmarshal(body, &jr); err != nil {
			t.Fatal(err)
		}
		if jr.Status == string(JobDone) || jr.Status == string(JobFailed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", jr.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if jr.Status != string(JobDone) {
		t.Fatalf("job failed: %s", jr.Error)
	}
	var res struct {
		Reports []struct{ Kind string }
	}
	if err := json.Unmarshal(jr.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 || res.Reports[0].Kind != "use-after-free" {
		t.Fatalf("reports = %+v", res.Reports)
	}
}

// TestQueueBackpressure fills the one-deep queue behind a blocked worker
// and expects 503 with a Retry-After hint on the overflow submission.
func TestQueueBackpressure(t *testing.T) {
	release := make(chan struct{})
	s, err := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.jobStartHook = func(*Job) { <-release }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Job 1 occupies the worker; wait until it is actually running.
	_, j1 := postAnalyze(t, ts.URL, AnalyzeRequest{Source: buggySrc, Async: true})
	waitRunning(t, s, 1)
	// Job 2 fills the queue (distinct source: job 1 has not finished, so
	// nothing is cached yet anyway).
	_, j2 := postAnalyze(t, ts.URL, AnalyzeRequest{Source: buggySrc + "\nfunc pad() { p = malloc(); }", Async: true})

	body, err := json.Marshal(AnalyzeRequest{Source: buggySrc + "\nfunc pad2() { p = malloc(); }", Async: true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submission status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 should carry Retry-After")
	}

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{j1.JobID, j2.JobID} {
		job, ok := s.Job(id)
		if !ok || job.State() != JobDone {
			t.Errorf("job %s: ok=%v state=%v", id, ok, job.State())
		}
	}
}

// TestJobDeadline bounds a job far below its analysis cost and expects a
// distinguishable deadline failure (504).
func TestJobDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	slow := workload.Generate(workload.SizeSweep(1, 6400, 6400)[0])
	status, jr := postAnalyze(t, ts.URL, AnalyzeRequest{Source: slow, TimeoutMS: 1})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%+v), want 504", status, jr)
	}
	if jr.Status != string(JobFailed) || !strings.Contains(jr.Error, "analysis canceled") {
		t.Fatalf("job = %+v", jr)
	}
}

// TestDrainCompletesInFlight is the SIGTERM acceptance path: draining
// rejects new submissions with 503 while the in-flight async job completes
// before Shutdown returns.
func TestDrainCompletesInFlight(t *testing.T) {
	release := make(chan struct{})
	s, err := New(Config{MaxConcurrent: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.jobStartHook = func(*Job) { <-release }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, acc := postAnalyze(t, ts.URL, AnalyzeRequest{Source: buggySrc, Async: true})
	waitRunning(t, s, 1)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitDraining(t, s)

	// Health flips to 503 and new submissions are refused.
	if code, body := getJSON(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(string(body), "draining") {
		t.Fatalf("healthz during drain = %d %q", code, body)
	}
	body, _ := json.Marshal(AnalyzeRequest{Source: buggySrc})
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain = %d, want 503", resp.StatusCode)
	}

	// The in-flight job still completes, then shutdown returns.
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	job, ok := s.Job(acc.JobID)
	if !ok {
		t.Fatal("job record lost")
	}
	if job.State() != JobDone {
		t.Fatalf("in-flight job state after drain = %s", job.State())
	}
}

// TestMetricsExposition scrapes /metrics after a cold+warm pair and checks
// the counters and histogram series.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postAnalyze(t, ts.URL, AnalyzeRequest{Source: buggySrc})
	postAnalyze(t, ts.URL, AnalyzeRequest{Source: buggySrc})

	code, body := getJSON(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status = %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"canaryd_jobs_accepted_total 2",
		"canaryd_jobs_completed_total 2",
		"canaryd_jobs_failed_total 0",
		"canaryd_jobs_cache_served_total 1",
		"canaryd_result_cache_hits_total 1",
		"canaryd_result_cache_entries 1",
		"canaryd_queue_depth 0",
		"canaryd_draining 0",
		`canaryd_stage_latency_seconds_count{stage="total"} 1`,
		"canaryd_guard_intern_hits_total",
		"canaryd_smt_cache_misses_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Every pipeline registry stage has a complete latency histogram fed
	// from the cold job's trace (the cache-served repeat observes nothing).
	for _, st := range pipeline.StageNames() {
		want := fmt.Sprintf("canaryd_stage_latency_seconds_bucket{stage=%q,le=\"+Inf\"} 1", st)
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if code, body := getJSON(t, ts.URL+"/healthz"); code != http.StatusOK ||
		!strings.Contains(string(body), "ok") {
		t.Errorf("healthz = %d %q", code, body)
	}
}

// TestBadRequests covers the 400/404 surface.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", resp.StatusCode)
	}

	status, _ := postAnalyze(t, ts.URL, AnalyzeRequest{})
	if status != http.StatusBadRequest {
		t.Errorf("missing source status = %d", status)
	}

	// A program that does not parse fails the job, not the HTTP exchange.
	status, jr := postAnalyze(t, ts.URL, AnalyzeRequest{Source: "func {"})
	if status != http.StatusUnprocessableEntity || jr.Status != string(JobFailed) {
		t.Errorf("parse failure = %d %+v", status, jr)
	}

	if code, _ := getJSON(t, ts.URL+"/v1/jobs/job-999"); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d", code)
	}
}

func waitRunning(t *testing.T, s *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for s.metrics.running.Load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d running jobs", want)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitDraining(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubmitDirect exercises the Go-level Submit API the bench harness
// uses, including queue-depth visibility.
func TestSubmitDirect(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s.jobStartHook = func(*Job) { <-release }

	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(fmt.Sprintf("%s\nfunc pad%d() { p = malloc(); }", buggySrc, i),
			canary.DefaultOptions(), 0)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	waitRunning(t, s, 1)
	if d := s.QueueDepth(); d != 2 {
		t.Errorf("queue depth = %d, want 2", d)
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.State() != JobDone {
			t.Errorf("job %s state = %s", j.ID(), j.State())
		}
		if result, _, _ := j.Result(); len(result) == 0 {
			t.Errorf("job %s has no result bytes", j.ID())
		}
	}
	// Submit after shutdown is a clean rejection.
	if _, err := s.Submit(buggySrc, canary.DefaultOptions(), 0); err != ErrDraining {
		t.Errorf("submit after shutdown = %v, want ErrDraining", err)
	}
}
