// Package server implements canaryd's long-running analysis service: a
// bounded job queue feeding a fixed-size scheduler of concurrent analyses,
// fronted by a content-addressed result cache and exposed over a small
// JSON HTTP API with plain-text metrics.
//
// The daemon is the deployment shape that lets the process-wide caches
// built for the one-shot pipeline — the guard hash-cons interner and the
// SMT verdict cache — actually amortize across requests: a warm repeat of
// a submission is answered from the content store byte-identically to its
// cold run (the determinism contract makes the cached bytes exact), and
// even a novel program re-interns most of its guard formulas.
//
// Lifecycle: New starts the worker pool immediately; Submit admits work
// until BeginDrain (SIGTERM in canaryd) flips the server into draining
// mode, after which new submissions are refused with ErrDraining while
// every already-admitted job — queued or running — completes before
// Shutdown returns.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"canary"
	"canary/internal/api"
	"canary/internal/cache"
	"canary/internal/diskstore"
	"canary/internal/failpoint"
	"canary/internal/fleet"
	"canary/internal/membership"
	"canary/internal/pipeline"
	"canary/internal/smt"
)

// Submission rejections. The HTTP layer maps both to 503.
var (
	// ErrDraining is returned by Submit after BeginDrain.
	ErrDraining = errors.New("server is draining")
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity (backpressure: the client should retry later).
	ErrQueueFull = errors.New("job queue full")
)

// Config sizes the service. The zero value of any field selects its
// default.
type Config struct {
	// MaxConcurrent is the number of analyses run simultaneously (the
	// scheduler's worker count). Each analysis internally uses the
	// pipeline's own worker pools (Options.Workers), so the default keeps
	// this small rather than one per CPU.
	MaxConcurrent int
	// QueueDepth bounds the number of admitted-but-unstarted jobs.
	QueueDepth int
	// JobTimeout caps every job's analysis deadline. A request may ask for
	// less via timeout_ms, never for more.
	JobTimeout time.Duration
	// StageTimeout, when positive, additionally caps each pipeline stage
	// (VFG build, checking) with its own wall-clock deadline inside the
	// job's overall deadline. Wall-clock budgets live only here in the
	// daemon — the library's Budgets are step-counted so library output
	// stays deterministic; a daemon operator trades that for liveness
	// explicitly by setting this.
	StageTimeout time.Duration
	// MaxRequestBytes bounds a POST /v1/analyze body; an oversized body is
	// refused with 413 before any of it is buffered past the limit.
	// <= 0 selects the 16 MiB default.
	MaxRequestBytes int64
	// CacheEntries bounds the content-addressed result store.
	CacheEntries int
	// CacheDir, when set, spills the daemon's warm state — the result
	// cache, the per-function summary store, and the SMT verdict store —
	// to a content-addressed disk store rooted there, so a restarted
	// daemon (or a sibling process sharing the directory) starts warm.
	CacheDir string
	// CacheMaxBytes caps the disk store's footprint; the least recently
	// accessed entries are evicted past it. <= 0 selects the diskstore
	// default (1 GiB). Ignored without CacheDir.
	CacheMaxBytes int64
	// MaxJobRecords bounds the finished-job history kept for GET
	// /v1/jobs/{id}; the oldest finished records are pruned first.
	MaxJobRecords int
	// MaxSessions is the hard cap on concurrently open live sessions.
	// At the cap, opening a new session first tries to evict the least
	// recently used idle session; if every session is busy the open is
	// refused with 503. <= 0 selects 256.
	MaxSessions int
	// SessionIdleTTL evicts a live session that has seen no open, edit,
	// or findings request for this long. <= 0 selects 10 minutes.
	SessionIdleTTL time.Duration
	// SessionSweep is the janitor's scan interval; <= 0 selects a
	// quarter of SessionIdleTTL clamped to [100ms, 30s].
	SessionSweep time.Duration
	// NodeID identifies this daemon in /healthz readiness reports; canaryd
	// defaults it to the listen address.
	NodeID string
	// Peers, when non-empty, enables the fleet peer cache tier: the base
	// URLs of every fleet member (including this node's own, named by
	// PeerSelf). Before computing a missed key, the daemon asks the key's
	// shard owner for the cached bytes. The list must match the router's
	// worker list so both sides hash to the same owners.
	Peers []string
	// PeerSelf is this node's own URL within Peers.
	PeerSelf string
	// PeerTimeout bounds each peer cache fetch; <= 0 selects the fleet
	// package's fail-fast default.
	PeerTimeout time.Duration
	// Join, when non-empty, replaces the static Peers list with dynamic
	// membership: the daemon gossips with these seed URLs, learns the
	// worker set from the protocol, and rebuilds its peer cache ring on
	// every membership change — no restart when the fleet scales or
	// heals. Requires Advertise; mutually exclusive with Peers.
	Join []string
	// Advertise is this node's base URL as other members reach it — its
	// identity in the gossip protocol and the peer ring. Required with
	// Join; canaryd defaults it to the bound listen address.
	Advertise string
	// GossipInterval, SuspectAfter, DeadAfter tune the membership agent
	// (zero values use the membership defaults).
	GossipInterval time.Duration
	SuspectAfter   time.Duration
	DeadAfter      time.Duration
	// Options is the base analysis configuration; per-request options
	// patch it.
	Options canary.Options
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
		if n := runtime.GOMAXPROCS(0) / 4; n > c.MaxConcurrent {
			c.MaxConcurrent = n
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.MaxJobRecords <= 0 {
		c.MaxJobRecords = 4096
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.SessionIdleTTL <= 0 {
		c.SessionIdleTTL = 10 * time.Minute
	}
	if c.SessionSweep <= 0 {
		c.SessionSweep = c.SessionIdleTTL / 4
		if c.SessionSweep < 100*time.Millisecond {
			c.SessionSweep = 100 * time.Millisecond
		}
		if c.SessionSweep > 30*time.Second {
			c.SessionSweep = 30 * time.Second
		}
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = defaultMaxRequestBytes
	}
	if c.Options.Entry == "" {
		c.Options = canary.DefaultOptions()
	}
	return c
}

// Server is the analysis service. Create with New; it is ready (workers
// running) on return.
type Server struct {
	cfg     Config
	cache   cache.ByteStore
	metrics *metrics
	// disk is the persistent store under all three warm tiers when
	// Config.CacheDir is set (nil otherwise); tiers are the write-behind
	// wrappers Shutdown drains.
	disk  *diskstore.Store
	tiers []*diskstore.Tiered
	// session is the warm incremental state shared by every job: the
	// digest-keyed per-function summary store and the structural SMT
	// verdict store. A resubmission that misses the result cache (an edited
	// program) still reuses everything its unchanged functions and
	// source–sink pairs established on earlier jobs.
	session *canary.Session
	// peers is the fleet peer cache tier (nil without Config.Peers or
	// Config.Join): the shard owner of a missed key is asked for its
	// bytes before this node computes them.
	peers *fleet.PeerClient
	// membership is the dynamic-membership agent (nil without
	// Config.Join). Its change events rebuild the peer ring above.
	membership *membership.Agent

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	jobOrder []string // admission order, for bounded history pruning
	nextID   uint64
	// inflight is the single-flight table: one live job per submission
	// key. A second submission of a key already queued or running shares
	// that job instead of analyzing twice (the in-process half of the
	// fleet's cross-node dedup).
	inflight map[cache.Key]*Job

	// The live-session registry (sessions.go): open edit-accepting
	// engines keyed by session ID, guarded by their own lock so slow
	// analyses never contend with job admission.
	sessMu   sync.Mutex
	sessions map[string]*liveSession
	sessStop chan struct{}

	queue chan *Job
	wg    sync.WaitGroup

	// jobStartHook, when non-nil, runs at the start of every job on the
	// worker goroutine. Tests use it to hold workers busy deterministically
	// (set it after New, before the first Submit).
	jobStartHook func(*Job)
}

// New builds a Server from cfg and starts its worker pool. The only
// error source is opening Config.CacheDir; a memory-only configuration
// cannot fail.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		metrics:  newMetrics(),
		jobs:     make(map[string]*Job),
		inflight: make(map[cache.Key]*Job),
		sessions: make(map[string]*liveSession),
		sessStop: make(chan struct{}),
		queue:    make(chan *Job, cfg.QueueDepth),
	}
	if len(cfg.Peers) > 0 && cfg.PeerSelf != "" {
		s.peers = fleet.NewPeerClient(cfg.Peers, cfg.PeerSelf, cfg.PeerTimeout)
	}
	if len(cfg.Join) > 0 {
		if cfg.Advertise == "" {
			return nil, errors.New("server: Join requires Advertise")
		}
		if s.peers != nil {
			return nil, errors.New("server: Join and Peers are mutually exclusive")
		}
		// The peer ring starts with just this node (every fetch a local
		// no-op) and grows as gossip discovers workers.
		s.peers = fleet.NewPeerClient([]string{cfg.Advertise}, cfg.Advertise, cfg.PeerTimeout)
		agent, err := membership.New(membership.Config{
			Self:         cfg.Advertise,
			Role:         api.RoleWorker,
			Seeds:        cfg.Join,
			Interval:     cfg.GossipInterval,
			SuspectAfter: cfg.SuspectAfter,
			DeadAfter:    cfg.DeadAfter,
			OnChange: func(ms []membership.Member) {
				s.peers.SetPeers(membership.AliveIDs(ms, api.RoleWorker))
			},
		})
		if err != nil {
			return nil, err
		}
		s.membership = agent
		agent.Start()
	}
	if cfg.CacheDir != "" {
		ds, err := diskstore.Open(cfg.CacheDir, cfg.CacheMaxBytes)
		if err != nil {
			return nil, err
		}
		s.disk = ds
		// The result cache and the session's summary/verdict stores share
		// one disk store (distinct namespaces), so one byte cap and one GC
		// govern the daemon's whole persistent footprint.
		rt := diskstore.NewTiered(cache.New(cfg.CacheEntries), ds.NS("result"), 0)
		s.cache = rt
		s.tiers = append(s.tiers, rt)
		s.session = canary.NewSessionOnDisk(ds)
	} else {
		s.cache = cache.New(cfg.CacheEntries)
		s.session = canary.NewSession()
	}
	s.wg.Add(cfg.MaxConcurrent)
	for i := 0; i < cfg.MaxConcurrent; i++ {
		go s.worker()
	}
	go s.sessionJanitor()
	return s, nil
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Submit admits one analysis of src under opt with the given deadline
// (0, or anything above Config.JobTimeout, means Config.JobTimeout).
//
// The admission path walks the cache tiers in cost order before any
// analysis is queued:
//
//  1. the content-addressed result store (memory, then disk) — a hit
//     returns an already-done job carrying the exact cold-run bytes;
//  2. the single-flight table — a submission whose key is already queued
//     or running shares that live job instead of analyzing twice;
//  3. the fleet peer tier (when configured) — the key's shard owner is
//     asked for its cached bytes, which also land in the local store;
//  4. the bounded queue — ErrQueueFull and ErrDraining reject without a
//     job record.
func (s *Server) Submit(src string, opt canary.Options, timeout time.Duration) (*Job, error) {
	if timeout <= 0 || timeout > s.cfg.JobTimeout {
		timeout = s.cfg.JobTimeout
	}
	job := &Job{
		key:      canary.SubmissionKey(src, opt),
		src:      src,
		opt:      opt,
		timeout:  timeout,
		state:    JobQueued,
		queuedAt: time.Now(),
		done:     make(chan struct{}),
	}

	s.mu.Lock()
	if job, err := s.admitFastLocked(job); job != nil || err != nil {
		return job, err
	}

	// Peer cache tier, outside the lock (it is a network call): ask the
	// key's shard owner before computing locally. Every failure mode
	// degrades to computing here. Peerless nodes keep the lock and fall
	// straight through to the queue.
	if s.peers != nil {
		s.mu.Unlock()
		if v, ok := s.peers.Fetch("result", job.key); ok {
			s.mu.Lock()
			if s.draining {
				s.mu.Unlock()
				s.metrics.rejected.Add(1)
				return nil, ErrDraining
			}
			s.cache.Put(job.key, v)
			s.admitLocked(job)
			s.mu.Unlock()
			job.complete(v, true)
			s.metrics.accepted.Add(1)
			s.metrics.completed.Add(1)
			s.metrics.cacheServed.Add(1)
			s.metrics.peerHits.Add(1)
			return job, nil
		}
		s.mu.Lock()
		// Re-run the fast path: the store or the single-flight table may
		// have filled while the peer fetch was in flight.
		if job, err := s.admitFastLocked(job); job != nil || err != nil {
			return job, err
		}
	}
	select {
	case s.queue <- job:
		// Sent while holding mu: BeginDrain closes the queue under the same
		// lock, so a send can never race the close.
		s.admitLocked(job)
		s.inflight[job.key] = job
		s.mu.Unlock()
		s.metrics.accepted.Add(1)
		return job, nil
	default:
		s.mu.Unlock()
		s.metrics.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// admitFastLocked tries the no-compute admission paths under s.mu: drain
// rejection, the content store, and the single-flight table. It returns
// (nil, nil) — with the lock still held — when the caller must proceed
// to the slower paths; on any other return the lock has been released.
func (s *Server) admitFastLocked(job *Job) (*Job, error) {
	if s.draining {
		s.mu.Unlock()
		s.metrics.rejected.Add(1)
		return nil, ErrDraining
	}
	if cached, ok := s.cache.Get(job.key); ok {
		s.admitLocked(job)
		s.mu.Unlock()
		job.complete(cached, true)
		s.metrics.accepted.Add(1)
		s.metrics.completed.Add(1)
		s.metrics.cacheServed.Add(1)
		return job, nil
	}
	if live, ok := s.inflight[job.key]; ok {
		s.mu.Unlock()
		s.metrics.accepted.Add(1)
		s.metrics.coalesced.Add(1)
		return live, nil
	}
	return nil, nil
}

// clearInflight removes job from the single-flight table once it reaches
// a terminal state (only if the slot is still this job's).
func (s *Server) clearInflight(job *Job) {
	s.mu.Lock()
	if s.inflight[job.key] == job {
		delete(s.inflight, job.key)
	}
	s.mu.Unlock()
}

// admitLocked assigns the job its ID and records it, pruning the oldest
// finished records beyond the history bound. Caller holds s.mu. The
// counter alone makes IDs unique, but the collision check keeps that
// true even if the counter is ever reset or the map is repopulated
// (e.g. restored history): an existing record is never replaced.
func (s *Server) admitLocked(job *Job) {
	s.nextID++
	for {
		if _, taken := s.jobs[fmt.Sprintf("job-%d", s.nextID)]; !taken {
			break
		}
		s.nextID++
	}
	job.id = fmt.Sprintf("job-%d", s.nextID)
	s.jobs[job.id] = job
	s.jobOrder = append(s.jobOrder, job.id)
	for len(s.jobs) > s.cfg.MaxJobRecords {
		pruned := false
		for i, id := range s.jobOrder {
			if j, ok := s.jobs[id]; ok && j.finished() {
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			break // everything live; let the map exceed the bound briefly
		}
	}
}

// Job returns the record of id, if still retained.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// QueueDepth returns the number of admitted-but-unstarted jobs.
func (s *Server) QueueDepth() int { return len(s.queue) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// CacheStats returns the content store's cumulative hit/miss counters and
// current size.
func (s *Server) CacheStats() (hits, misses uint64, entries int) {
	h, m := s.cache.Stats()
	return h, m, s.cache.Len()
}

// BeginDrain flips the server into draining mode: subsequent Submits fail
// with ErrDraining, /healthz turns 503, and the queue is closed so workers
// exit once the already-admitted jobs finish. Idempotent.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.draining = true
		close(s.queue)
		close(s.sessStop)
	}
}

// Shutdown drains the server: it rejects new work, then waits — bounded by
// ctx — for every admitted job to reach a terminal state. It returns
// ctx.Err() if the deadline expires first (jobs keep running; call again
// to keep waiting).
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	if s.membership != nil {
		// Stop advertising; the gossip endpoint keeps answering while the
		// HTTP server lives, so peers still merge our final state.
		s.membership.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		// Workers stopped and the janitor told to quit: close every live
		// session, then drain the write-behind tiers so the warm state of
		// the final jobs survives the restart.
		s.closeAllSessions()
		for _, t := range s.tiers {
			t.Close()
		}
		s.session.Close()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.safeRun(job)
	}
}

// safeRun is the daemon's outermost panic net around one job: a panic
// escaping the whole analysis stack (the library's own recovery layers
// included) fails this job with a structured internal error, quarantines
// the program's summaries from the warm session, and leaves the worker
// alive for the next job. The job-dequeue failpoint fires here so the
// fault-injection suite can exercise exactly this path.
func (s *Server) safeRun(job *Job) {
	defer s.clearInflight(job)
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panicsRecovered.Add(1)
			s.session.Quarantine(job.src)
			s.metrics.failed.Add(1)
			job.fail(fmt.Sprintf("internal error: recovered panic: %v", r), false)
		}
	}()
	if ferr := failpoint.Inject(failpoint.SiteJobDequeue); ferr != nil {
		s.metrics.failed.Add(1)
		job.fail(ferr.Error(), false)
		return
	}
	s.runJob(job)
}

// runJob executes one analysis under the job's deadline and publishes the
// outcome to the job record, the content store, and the metrics.
func (s *Server) runJob(job *Job) {
	job.setRunning()
	s.metrics.running.Add(1)
	defer s.metrics.running.Add(-1)
	if s.jobStartHook != nil {
		s.jobStartHook(job)
	}

	ctx, cancel := context.WithTimeout(context.Background(), job.timeout)
	defer cancel()
	start := time.Now()
	res, err := s.analyze(ctx, job)
	wall := time.Since(start)
	if err != nil {
		s.metrics.failed.Add(1)
		job.fail(err.Error(), errors.Is(err, canary.ErrCanceled))
		return
	}
	buf, err := json.Marshal(res)
	if err != nil {
		s.metrics.failed.Add(1)
		job.fail(fmt.Sprintf("encoding result: %v", err), false)
		return
	}
	s.cache.Put(job.key, buf)
	s.metrics.trivialSolves.Add(uint64(res.Check.TrivialSolves))
	s.observeGovernance(res)
	// Every pipeline stage's latency comes off the result's trace spans —
	// the stage set is the registry's, not a hand list.
	for _, sp := range res.Trace {
		if h := s.metrics.stage[sp.Stage]; h != nil {
			h.observe(sp.Wall)
		}
	}
	s.metrics.total.observe(wall)
	s.metrics.completed.Add(1)
	job.complete(buf, false)
}

// analyze runs the pipeline for one job as a live session opened and
// discarded in one request — the same spine the /v1/sessions endpoints
// drive, including the per-stage wall split (Config.StageTimeout).
func (s *Server) analyze(ctx context.Context, job *Job) (*canary.Result, error) {
	live, _, err := s.session.OpenLive(ctx, job.src, job.opt, canary.LiveConfig{StageTimeout: s.cfg.StageTimeout})
	if err != nil {
		return nil, err
	}
	res := live.Result()
	live.Close()
	return res, nil
}

// observeGovernance folds one completed job's degradation stats into the
// daemon counters.
func (s *Server) observeGovernance(res *canary.Result) {
	if res.VFG.FixpointBudgetExhausted {
		s.metrics.budget[pipeline.BudgetFixpoint].Add(1)
	}
	s.metrics.budget[pipeline.BudgetSearch].Add(uint64(res.Check.SearchBudgetExhausted))
	s.metrics.budget[pipeline.BudgetFormula].Add(uint64(res.Check.FormulaBudgetExhausted))
	s.metrics.budget[pipeline.BudgetSolve].Add(uint64(res.Check.SolveBudgetExhausted))
	s.metrics.panicsRecovered.Add(uint64(res.Check.PanicsRecovered))
}

// writeMetrics renders the plain-text metrics exposition: job counters,
// queue gauges, the three cache layers (result store, SMT verdicts, guard
// interner), and the per-stage latency histograms.
func (s *Server) writeMetrics(w io.Writer) {
	m := s.metrics
	fmt.Fprintf(w, "canaryd_jobs_accepted_total %d\n", m.accepted.Load())
	fmt.Fprintf(w, "canaryd_jobs_completed_total %d\n", m.completed.Load())
	fmt.Fprintf(w, "canaryd_jobs_failed_total %d\n", m.failed.Load())
	fmt.Fprintf(w, "canaryd_jobs_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintf(w, "canaryd_jobs_cache_served_total %d\n", m.cacheServed.Load())
	fmt.Fprintf(w, "canaryd_jobs_running %d\n", m.running.Load())
	fmt.Fprintf(w, "canaryd_queue_depth %d\n", s.QueueDepth())
	fmt.Fprintf(w, "canaryd_queue_capacity %d\n", s.cfg.QueueDepth)
	drain := 0
	if s.Draining() {
		drain = 1
	}
	fmt.Fprintf(w, "canaryd_draining %d\n", drain)

	hits, misses, entries := s.CacheStats()
	fmt.Fprintf(w, "canaryd_result_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "canaryd_result_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "canaryd_result_cache_entries %d\n", entries)
	sh, sm := smt.DefaultCache.Stats()
	fmt.Fprintf(w, "canaryd_smt_cache_hits_total %d\n", sh)
	fmt.Fprintf(w, "canaryd_smt_cache_misses_total %d\n", sm)
	suh, sum := s.session.SummaryStats()
	fmt.Fprintf(w, "canaryd_summary_hits_total %d\n", suh)
	fmt.Fprintf(w, "canaryd_summary_misses_total %d\n", sum)
	vh, vm := s.session.VerdictStats()
	fmt.Fprintf(w, "canaryd_verdict_hits_total %d\n", vh)
	fmt.Fprintf(w, "canaryd_verdict_misses_total %d\n", vm)
	fmt.Fprintf(w, "canaryd_trivial_solves_total %d\n", s.metrics.trivialSolves.Load())
	for _, dim := range pipeline.BudgetDimensions() {
		fmt.Fprintf(w, "canaryd_budget_exhausted_total{stage=%q} %d\n", dim, m.budget[dim].Load())
	}
	// Worker- and checker-level recoveries live in the daemon counter;
	// session-level recoveries (and all quarantines) are counted by the
	// shared Session. The events are disjoint, so the sum is exact.
	fmt.Fprintf(w, "canaryd_panics_recovered_total %d\n", m.panicsRecovered.Load()+s.session.PanicsRecovered())
	fmt.Fprintf(w, "canaryd_quarantined_summaries_total %d\n", s.session.QuarantinedSummaries())
	gh, gm := canary.GuardInternStats()
	fmt.Fprintf(w, "canaryd_guard_intern_hits_total %d\n", gh)
	fmt.Fprintf(w, "canaryd_guard_intern_misses_total %d\n", gm)
	gi, bw, _ := canary.AllocStats()
	fmt.Fprintf(w, "canaryd_guard_interned_total %d\n", gi)
	fmt.Fprintf(w, "canaryd_pta_bitset_words %d\n", bw)
	// The persistent tier's counters (all zero without -cache-dir, so
	// scrapers can rely on the series existing either way).
	var dst diskstore.Stats
	if s.disk != nil {
		dst = s.disk.Stats()
	}
	fmt.Fprintf(w, "canaryd_disk_hits_total %d\n", dst.Hits)
	fmt.Fprintf(w, "canaryd_disk_misses_total %d\n", dst.Misses)
	fmt.Fprintf(w, "canaryd_disk_writes_total %d\n", dst.Writes)
	fmt.Fprintf(w, "canaryd_disk_corrupt_entries_total %d\n", dst.CorruptEntries)
	fmt.Fprintf(w, "canaryd_disk_gc_evictions_total %d\n", dst.GCEvictions)
	fmt.Fprintf(w, "canaryd_disk_bytes %d\n", dst.Bytes)
	fmt.Fprintf(w, "canaryd_disk_entries %d\n", dst.Entries)
	// The fleet tier: batch traffic, in-process single-flight dedup, the
	// peer cache client (this node asking shard owners) and server side
	// (shard owners asking this node). All zero outside a fleet, so
	// scrapers can rely on the series existing either way.
	fmt.Fprintf(w, "canaryd_batch_requests_total %d\n", m.batchRequests.Load())
	fmt.Fprintf(w, "canaryd_batch_items_total %d\n", m.batchItems.Load())
	fmt.Fprintf(w, "canaryd_inflight_coalesced_total %d\n", m.coalesced.Load())
	var pst fleet.PeerStats
	if s.peers != nil {
		pst = s.peers.Stats()
	}
	fmt.Fprintf(w, "canaryd_peer_fetches_total %d\n", pst.Fetches)
	fmt.Fprintf(w, "canaryd_peer_hits_total %d\n", pst.Hits)
	fmt.Fprintf(w, "canaryd_peer_misses_total %d\n", pst.Misses)
	fmt.Fprintf(w, "canaryd_peer_errors_total %d\n", pst.Errors)
	fmt.Fprintf(w, "canaryd_peer_coalesced_total %d\n", pst.Coalesced)
	fmt.Fprintf(w, "canaryd_peer_jobs_served_total %d\n", m.peerHits.Load())
	fmt.Fprintf(w, "canaryd_peer_cache_get_hits_total %d\n", m.peerServed.Load())
	fmt.Fprintf(w, "canaryd_peer_cache_get_misses_total %d\n", m.peerMissServed.Load())
	// Dynamic membership (all zero without -join, so the series exist
	// either way).
	var mst membership.Stats
	if s.membership != nil {
		mst = s.membership.Stats()
	}
	fmt.Fprintf(w, "canaryd_gossip_rounds_total %d\n", mst.Rounds)
	fmt.Fprintf(w, "canaryd_gossip_exchanges_total %d\n", mst.Sends)
	fmt.Fprintf(w, "canaryd_gossip_send_errors_total %d\n", mst.SendErrors)
	fmt.Fprintf(w, "canaryd_gossip_received_total %d\n", mst.Received)
	fmt.Fprintf(w, "canaryd_gossip_refutations_total %d\n", mst.Refutations)
	fmt.Fprintf(w, "canaryd_gossip_pingreq_total %d\n", mst.PingReqs)
	fmt.Fprintf(w, "canaryd_gossip_pingreq_acks_total %d\n", mst.PingReqAcks)
	fmt.Fprintf(w, "canaryd_membership_changes_total %d\n", mst.Changes)
	fmt.Fprintf(w, "canaryd_members_alive %d\n", mst.Alive)
	fmt.Fprintf(w, "canaryd_members_suspect %d\n", mst.Suspect)
	fmt.Fprintf(w, "canaryd_members_dead %d\n", mst.Dead)
	// The live-session tier (all zero until a client opens one, so the
	// series exist either way).
	s.sessMu.Lock()
	open := len(s.sessions)
	s.sessMu.Unlock()
	fmt.Fprintf(w, "canaryd_sessions_open %d\n", open)
	fmt.Fprintf(w, "canaryd_sessions_opened_total %d\n", m.sessionsOpened.Load())
	fmt.Fprintf(w, "canaryd_sessions_closed_total %d\n", m.sessionsClosed.Load())
	fmt.Fprintf(w, "canaryd_sessions_evicted_ttl_total %d\n", m.sessionsEvictedTTL.Load())
	fmt.Fprintf(w, "canaryd_sessions_evicted_lru_total %d\n", m.sessionsEvictedLRU.Load())
	fmt.Fprintf(w, "canaryd_session_edits_total %d\n", m.sessionEdits.Load())
	fmt.Fprintf(w, "canaryd_session_edits_rejected_total %d\n", m.sessionEditsRej.Load())
	fmt.Fprintf(w, "canaryd_session_trivial_edits_total %d\n", m.sessionTrivial.Load())
	m.editLatency.writeTo(w, "canaryd_session_edit_latency_seconds", "edit")

	for _, st := range pipeline.Stages() {
		m.stage[st.MetricsLabel()].writeTo(w, "canaryd_stage_latency_seconds", st.MetricsLabel())
	}
	m.total.writeTo(w, "canaryd_stage_latency_seconds", "total")
}
