package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"canary/internal/failpoint"
)

// TestJobDequeuePanicIsolated arms the daemon's own failpoint in panic
// mode: the poisoned job must fail with a structured internal error while
// the worker, the health endpoint, and the next job all stay healthy.
func TestJobDequeuePanicIsolated(t *testing.T) {
	failpoint.Reset()
	defer failpoint.Reset()
	s, ts := newTestServer(t, Config{MaxConcurrent: 1})

	if err := failpoint.Enable(failpoint.SiteJobDequeue, "panic"); err != nil {
		t.Fatal(err)
	}
	status, jr := postAnalyze(t, ts.URL, AnalyzeRequest{Source: buggySrc})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("poisoned job status = %d (%+v), want 422", status, jr)
	}
	if jr.Status != string(JobFailed) || !strings.Contains(jr.Error, "recovered panic") {
		t.Fatalf("poisoned job = %+v, want a recovered-panic failure", jr)
	}

	// The daemon is still alive and serving.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz after a worker panic = %d, want 200", resp.StatusCode)
	}

	// Disarm; the same worker must process the next job normally.
	failpoint.Reset()
	status, jr = postAnalyze(t, ts.URL, AnalyzeRequest{Source: buggySrc})
	if status != http.StatusOK || jr.Status != string(JobDone) {
		t.Fatalf("post-panic job = %d %+v, want a clean completion", status, jr)
	}

	// The recovery is observable.
	var mbuf bytes.Buffer
	s.writeMetrics(&mbuf)
	metrics := mbuf.String()
	if !strings.Contains(metrics, "canaryd_panics_recovered_total 1") {
		t.Errorf("metrics missing the recovered panic:\n%s", metrics)
	}
}

// TestJobDequeueErrorFailsJobCleanly covers the error mode of the same
// site: a typed injected error fails the job without tripping the panic
// accounting.
func TestJobDequeueErrorFailsJobCleanly(t *testing.T) {
	failpoint.Reset()
	defer failpoint.Reset()
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})
	if err := failpoint.Enable(failpoint.SiteJobDequeue, "error"); err != nil {
		t.Fatal(err)
	}
	status, jr := postAnalyze(t, ts.URL, AnalyzeRequest{Source: buggySrc})
	if status != http.StatusUnprocessableEntity || jr.Status != string(JobFailed) {
		t.Fatalf("injected-error job = %d %+v, want 422/failed", status, jr)
	}
	if !strings.Contains(jr.Error, "injected fault") {
		t.Fatalf("job error %q does not surface the typed fault", jr.Error)
	}
}

// TestOversizedBodyRejected413 pins the configurable request-body limit:
// an oversized POST gets 413 with a JSON error and no job record.
func TestOversizedBodyRejected413(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxRequestBytes: 4096})
	body, err := json.Marshal(AnalyzeRequest{Source: strings.Repeat("x", 8192)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("413 body is not a JSON error (err=%v, %+v)", err, e)
	}
	if !strings.Contains(e.Error, "4096") {
		t.Errorf("413 error %q should name the limit", e.Error)
	}
	if s.metrics.accepted.Load() != 0 {
		t.Error("an oversized body must not count as an accepted job")
	}
}

// TestBudgetPatchDegradesAndCounts submits with a starvation DFS budget
// through the options patch and expects a degraded (not failed) result
// plus the matching daemon counter.
func TestBudgetPatchDegradesAndCounts(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	steps := 1
	status, jr := postAnalyze(t, ts.URL, AnalyzeRequest{
		Source:  buggySrc,
		Options: &OptionsPatch{MaxDFSSteps: &steps},
	})
	if status != http.StatusOK || jr.Status != string(JobDone) {
		t.Fatalf("budgeted job = %d %+v, want a completed (degraded) job", status, jr)
	}
	var res struct {
		Degraded []string `json:"Degraded"`
	}
	if err := json.Unmarshal(jr.Result, &res); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, stage := range res.Degraded {
		if stage == "search" {
			found = true
		}
	}
	if !found {
		t.Fatalf("result.Degraded = %v, want it to include \"search\"", res.Degraded)
	}
	var mbuf bytes.Buffer
	s.writeMetrics(&mbuf)
	if !strings.Contains(mbuf.String(), `canaryd_budget_exhausted_total{stage="search"}`) ||
		strings.Contains(mbuf.String(), `canaryd_budget_exhausted_total{stage="search"} 0`) {
		t.Errorf("search-budget exhaustion not counted:\n%s", mbuf.String())
	}
}

// TestStageTimeoutFailsSlowBuilds: a wall-clock stage budget far below
// the job's analysis cost must fail the job as canceled while leaving
// the server healthy.
func TestStageTimeoutFailsSlowBuilds(t *testing.T) {
	_, ts := newTestServer(t, Config{StageTimeout: time.Nanosecond})
	status, jr := postAnalyze(t, ts.URL, AnalyzeRequest{Source: buggySrc})
	if status != http.StatusGatewayTimeout || jr.Status != string(JobFailed) {
		t.Fatalf("stage-timeout job = %d %+v, want 504/failed", status, jr)
	}
}

// TestMetricsGovernanceLines asserts the governance counters are present
// (at zero) on a fresh server so scrapers can rely on them.
func TestMetricsGovernanceLines(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.BeginDrain() })
	var buf bytes.Buffer
	s.writeMetrics(&buf)
	for _, stage := range []string{"fixpoint", "search", "formula", "solve"} {
		want := fmt.Sprintf("canaryd_budget_exhausted_total{stage=%q} 0", stage)
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	for _, want := range []string{
		"canaryd_panics_recovered_total 0",
		"canaryd_quarantined_summaries_total 0",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
