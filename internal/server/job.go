package server

import (
	"sync"
	"time"

	"canary"
	"canary/internal/cache"
)

// JobState enumerates a job's lifecycle: queued → running → done | failed.
// A cache-served job goes straight to done at submission time.
type JobState string

// Job states, as rendered in the JSON API's status field.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job is one accepted analysis submission. The immutable submission fields
// are set at creation; the mutable lifecycle fields are guarded by mu and
// published through snapshot (the HTTP layer) and Done (sync waiters).
type Job struct {
	id      string
	key     cache.Key
	src     string
	opt     canary.Options
	timeout time.Duration

	mu         sync.Mutex
	state      JobState
	cached     bool
	timedOut   bool
	result     []byte // canonical JSON encoding of canary.Result
	errMsg     string
	queuedAt   time.Time
	finishedAt time.Time
	done       chan struct{}
}

// ID returns the job's identifier ("job-N").
func (j *Job) ID() string { return j.id }

// Key returns the submission's content-address (see canary.SubmissionKey).
func (j *Job) Key() cache.Key { return j.key }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the terminal outcome: the canonical result bytes (nil
// until done), whether they came from the content store, and the error
// message of a failed job.
func (j *Job) Result() (result []byte, cached bool, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.cached, j.errMsg
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()
}

// complete and fail are idempotent: the first terminal transition wins
// and closes done; a later call (e.g. the worker's panic-recovery net
// firing after the job already failed) is a no-op instead of a
// double-close panic.
func (j *Job) complete(result []byte, cached bool) {
	j.mu.Lock()
	if j.state == JobDone || j.state == JobFailed {
		j.mu.Unlock()
		return
	}
	j.state = JobDone
	j.result = result
	j.cached = cached
	j.finishedAt = time.Now()
	j.mu.Unlock()
	close(j.done)
}

func (j *Job) fail(msg string, timedOut bool) {
	j.mu.Lock()
	if j.state == JobDone || j.state == JobFailed {
		j.mu.Unlock()
		return
	}
	j.state = JobFailed
	j.errMsg = msg
	j.timedOut = timedOut
	j.finishedAt = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// jobView is a consistent copy of a job's observable state for the HTTP
// layer.
type jobView struct {
	ID       string
	Key      cache.Key
	State    JobState
	Cached   bool
	TimedOut bool
	Result   []byte
	ErrMsg   string
	Elapsed  time.Duration // queue admission to terminal state; 0 while live
}

func (j *Job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID: j.id, Key: j.key, State: j.state, Cached: j.cached,
		TimedOut: j.timedOut, Result: j.result, ErrMsg: j.errMsg,
	}
	if !j.finishedAt.IsZero() {
		v.Elapsed = j.finishedAt.Sub(j.queuedAt)
	}
	return v
}

func (j *Job) finished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == JobDone || j.state == JobFailed
}
