package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDiskBackedRestartServesWarm is the daemon half of the warm-restart
// contract: a canaryd configured with -cache-dir is shut down and a new
// daemon is started on the same directory; the repeated submission must be
// served from the disk-backed result store, byte-identical to the cold
// run, with the disk hit counters showing it.
func TestDiskBackedRestartServesWarm(t *testing.T) {
	dir := t.TempDir()

	s1, err := New(Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	status, cold := postAnalyze(t, ts1.URL, AnalyzeRequest{Source: buggySrc})
	if status != http.StatusOK || cold.Status != string(JobDone) || cold.Cached {
		t.Fatalf("cold = %d %+v", status, cold)
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The "restart": a brand-new server over the same directory. Nothing
	// warm survives in memory — only the disk store.
	s2, err := New(Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s2.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})

	status, warm := postAnalyze(t, ts2.URL, AnalyzeRequest{Source: buggySrc})
	if status != http.StatusOK || warm.Status != string(JobDone) {
		t.Fatalf("warm = %d %+v", status, warm)
	}
	if !warm.Cached {
		t.Fatal("restarted daemon did not serve the submission from the disk store")
	}
	if warm.CacheKey != cold.CacheKey {
		t.Fatalf("cache keys differ across restart: %s vs %s", cold.CacheKey, warm.CacheKey)
	}
	if compactJSON(t, warm.Result) != compactJSON(t, cold.Result) {
		t.Fatal("restarted result is not byte-identical to the cold run")
	}

	// The scrape surface shows the disk serving: hits > 0, bytes > 0.
	code, body := getJSON(t, ts2.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status = %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"canaryd_disk_hits_total",
		"canaryd_disk_misses_total",
		"canaryd_disk_writes_total",
		"canaryd_disk_corrupt_entries_total",
		"canaryd_disk_gc_evictions_total",
		"canaryd_disk_bytes",
		"canaryd_disk_entries",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(text, "canaryd_disk_hits_total 0\n") {
		t.Error("disk hit counter still zero after a disk-served submission")
	}
	if strings.Contains(text, "canaryd_disk_bytes 0\n") {
		t.Error("disk bytes gauge still zero over a populated store")
	}
}

// TestMetricsDiskLinesPresentWithoutStore: with no -cache-dir the disk
// series must still exist (as zeros), so scrapers can rely on them.
func TestMetricsDiskLinesPresentWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := getJSON(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status = %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"canaryd_disk_hits_total 0",
		"canaryd_disk_misses_total 0",
		"canaryd_disk_bytes 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
