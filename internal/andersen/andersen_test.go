package andersen

import (
	"context"
	"testing"

	"canary/internal/ir"
	"canary/internal/lang"
)

func run(t *testing.T, src string) (*Andersen, *ir.Program) {
	t.Helper()
	ast, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast, ir.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunAndersen(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	return a, prog
}

func varByPrefix(t *testing.T, prog *ir.Program, prefix string) ir.VarID {
	t.Helper()
	for _, v := range prog.Vars {
		if len(v.Name) >= len(prefix) && v.Name[:len(prefix)] == prefix {
			return v.ID
		}
	}
	t.Fatalf("no var %q", prefix)
	return 0
}

func TestAllocAndCopy(t *testing.T) {
	a, prog := run(t, `
func main() {
  p = malloc();
  q = p;
}
`)
	p := varByPrefix(t, prog, "p.")
	q := varByPrefix(t, prog, "q.")
	if len(a.Pts(p)) != 1 {
		t.Fatalf("pts(p) = %v", a.Pts(p))
	}
	if !a.MayAlias(p, q) {
		t.Error("p and q must alias after copy")
	}
}

func TestLoadStoreFlowInsensitive(t *testing.T) {
	// Flow-insensitivity: even though the store is after the load in
	// program order, the load sees the stored value.
	a, prog := run(t, `
func main() {
  x = malloc();
  r = *x;
  v = malloc();
  *x = v;
}
`)
	r := varByPrefix(t, prog, "r.")
	v := varByPrefix(t, prog, "v.")
	if !a.MayAlias(r, v) {
		t.Error("flow-insensitive solver must connect the later store to the load")
	}
}

func TestTransitiveThroughHeap(t *testing.T) {
	a, prog := run(t, `
func main() {
  x = malloc();
  inner = malloc();
  *x = inner;
  y = x;
  got = *y;
}
`)
	got := varByPrefix(t, prog, "got.")
	inner := varByPrefix(t, prog, "inner.")
	if !a.MayAlias(got, inner) {
		t.Error("load through alias must see the stored object")
	}
}

func TestNoAliasDistinctHeaps(t *testing.T) {
	a, prog := run(t, `
func main() {
  p = malloc();
  q = malloc();
}
`)
	p := varByPrefix(t, prog, "p.")
	q := varByPrefix(t, prog, "q.")
	if a.MayAlias(p, q) {
		t.Error("distinct allocations must not alias")
	}
}

func TestPhiMerging(t *testing.T) {
	a, prog := run(t, `
func main() {
  if (c) { p = malloc(); } else { p = malloc(); }
  q = p;
}
`)
	q := varByPrefix(t, prog, "q.")
	if len(a.Pts(q)) != 2 {
		t.Fatalf("q should point to both branch objects, got %v", a.Pts(q))
	}
}

func TestCancellation(t *testing.T) {
	ast, _ := lang.Parse(`func main() { p = malloc(); }`)
	prog, _ := ir.Lower(ast, ir.DefaultOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunAndersen(ctx, prog); err == nil {
		t.Fatal("cancelled context should abort")
	}
}

func TestSizeCounts(t *testing.T) {
	a, _ := run(t, `
func main() {
  p = malloc();
  q = p;
  r = q;
}
`)
	if a.Size() < 3 {
		t.Errorf("Size = %d, want at least 3 facts", a.Size())
	}
}
