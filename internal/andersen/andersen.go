package andersen

import (
	"context"

	"canary/internal/ir"
)

// Andersen is an inclusion-based, flow- and context-insensitive points-to
// analysis over the lowered IR: the exhaustive whole-program pointer
// analysis that Saber-style tools run before building their value-flow
// graphs (and that Canary's thread-modular algorithm deliberately avoids,
// §4). Guards and statement order are ignored entirely.
type Andersen struct {
	prog *ir.Program
	// pts maps each variable to its points-to set.
	pts map[ir.VarID]map[ir.ObjID]bool
	// contents maps each field-sensitive location to the set of values
	// stored into it.
	contents map[Loc]map[ir.VarID]bool
}

// Loc is a field-sensitive memory location (Field "" = the whole cell).
type Loc struct {
	Obj   ir.ObjID
	Field string
}

// ErrCancelled is returned when the context deadline fires mid-analysis.
var ErrCancelled = context.Canceled

// RunAndersen solves the inclusion constraints of prog to a fixed point.
// The context is checked between iterations so the evaluation harness can
// enforce timeouts.
func RunAndersen(ctx context.Context, prog *ir.Program) (*Andersen, error) {
	a := &Andersen{
		prog:     prog,
		pts:      make(map[ir.VarID]map[ir.ObjID]bool),
		contents: make(map[Loc]map[ir.VarID]bool),
	}
	// Copy edges: subset constraints src ⊆ dst.
	type copyEdge struct{ src, dst ir.VarID }
	var copies []copyEdge
	var stores, loads []*ir.Inst
	for _, inst := range prog.Insts() {
		switch inst.Op {
		case ir.OpAlloc, ir.OpAddr, ir.OpNull:
			a.addPts(inst.Def, inst.Obj)
		case ir.OpCopy:
			copies = append(copies, copyEdge{inst.Val, inst.Def})
		case ir.OpPhi:
			for _, op := range inst.Ops {
				copies = append(copies, copyEdge{op, inst.Def})
			}
		case ir.OpStore:
			stores = append(stores, inst)
		case ir.OpLoad:
			loads = append(loads, inst)
		}
	}
	// Naive iterate-to-fixpoint solver (the cubic closure): deliberately
	// exhaustive, matching the baseline's cost profile.
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		changed := false
		for _, c := range copies {
			if a.include(c.src, c.dst) {
				changed = true
			}
		}
		for _, s := range stores {
			for o := range a.pts[s.Ptr] {
				if a.addContent(Loc{Obj: o, Field: s.Field}, s.Val) {
					changed = true
				}
			}
		}
		for _, l := range loads {
			for o := range a.pts[l.Ptr] {
				for v := range a.contents[Loc{Obj: o, Field: l.Field}] {
					if a.include(v, l.Def) {
						changed = true
					}
				}
			}
		}
		if !changed {
			return a, nil
		}
	}
}

func (a *Andersen) addPts(v ir.VarID, o ir.ObjID) bool {
	m := a.pts[v]
	if m == nil {
		m = make(map[ir.ObjID]bool)
		a.pts[v] = m
	}
	if m[o] {
		return false
	}
	m[o] = true
	return true
}

func (a *Andersen) addContent(l Loc, v ir.VarID) bool {
	m := a.contents[l]
	if m == nil {
		m = make(map[ir.VarID]bool)
		a.contents[l] = m
	}
	if m[v] {
		return false
	}
	m[v] = true
	return true
}

// include propagates pts(src) into pts(dst); reports change.
func (a *Andersen) include(src, dst ir.VarID) bool {
	changed := false
	for o := range a.pts[src] {
		if a.addPts(dst, o) {
			changed = true
		}
	}
	return changed
}

// Pts returns the points-to set of v (never nil; may be empty).
func (a *Andersen) Pts(v ir.VarID) map[ir.ObjID]bool {
	if m := a.pts[v]; m != nil {
		return m
	}
	return map[ir.ObjID]bool{}
}

// MayAlias reports whether two pointers may point to a common object.
func (a *Andersen) MayAlias(x, y ir.VarID) bool {
	px, py := a.pts[x], a.pts[y]
	if len(px) > len(py) {
		px, py = py, px
	}
	for o := range px {
		if py[o] {
			return true
		}
	}
	return false
}

// Size returns the total number of (var, obj) points-to facts.
func (a *Andersen) Size() int {
	n := 0
	for _, m := range a.pts {
		n += len(m)
	}
	return n
}
