package canary

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary and checks its key output
// lines, keeping the README's promises honest.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn go run")
	}
	cases := []struct {
		dir     string
		needles []string
	}{
		{"./examples/quickstart", []string{
			"reports: 0",
			"use-after-free",
			"aggregated guard",
		}},
		{"./examples/uafhunt", []string{
			"1 report(s)",
			"lock-protected pool produced no report",
		}},
		{"./examples/nullderef", []string{
			"1 null-deref report(s)",
			"never-nulled slot produced no report",
		}},
		{"./examples/taintleak", []string{
			"1 leak report(s)",
			"early logger produced no report",
		}},
		{"./examples/relaxedmemory", []string{
			"sc : 0 report(s)",
			"tso: 0 report(s)",
			"pso: 1 report(s)",
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			out, err := exec.Command("go", "run", tc.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s: %v\n%s", tc.dir, err, out)
			}
			for _, n := range tc.needles {
				if !strings.Contains(string(out), n) {
					t.Errorf("%s: output missing %q:\n%s", tc.dir, n, out)
				}
			}
		})
	}
}
