package canary

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzAnalyze runs the whole pipeline on arbitrary inputs under tiny
// step budgets, seeded from the analysis corpus. The contract is the
// robustness tentpole's: any input either analyzes (possibly degraded to
// inconclusive verdicts) or returns a typed error — never a panic and
// never an unbounded run. The budgets keep each exploration cheap so the
// fuzzer's throughput stays useful; inputs beyond 4 KiB are skipped
// because the corpus grammar never needs them to reach new pipeline
// states.
func FuzzAnalyze(f *testing.F) {
	corpus, err := filepath.Glob(filepath.Join("testdata", "*.cn"))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range corpus {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("func main() { p = malloc(); free(p); free(p); }")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4<<10 {
			t.Skip("oversized input")
		}
		opt := DefaultOptions()
		opt.Workers = 1
		opt.UnrollDepth = 1
		opt.InlineDepth = 2
		opt.Budgets = Budgets{
			MaxFixpointRounds: 4,
			MaxDFSSteps:       200,
			MaxFormulaNodes:   64,
		}
		res, err := Analyze(src, opt)
		if err == nil && res == nil {
			t.Error("Analyze returned (nil, nil)")
		}
	})
}
