package canary

import (
	"context"
	"errors"
	"testing"
	"time"
)

const ctxTestProgram = `
func main() {
  x = malloc();
  fork(t, worker, x);
  c = *x;
  print(*c);
}
func worker(y) {
  b = malloc();
  *y = b;
  free(b);
}
`

// TestAnalyzeContextCanceled locks in the cancellation contract: an
// already-canceled context aborts the analysis with an error that matches
// both ErrCanceled and the concrete context cause, and never returns a
// partial result.
func TestAnalyzeContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AnalyzeContext(ctx, ctxTestProgram, DefaultOptions())
	if res != nil {
		t.Fatalf("canceled analysis returned a result: %+v", res)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in the chain, got %v", err)
	}
}

// TestAnalyzeContextDeadline asserts deadline errors are distinguishable
// from plain cancellation.
func TestAnalyzeContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := AnalyzeContext(ctx, ctxTestProgram, DefaultOptions())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded in the chain, got %v", err)
	}
}

// TestCheckContextCanceled exercises the checking-stage checkpoints over an
// already-built VFG.
func TestCheckContextCanceled(t *testing.T) {
	a, err := NewAnalysis(ctxTestProgram, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.CheckContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled from CheckContext, got %v", err)
	}
	// The analysis is reusable after a canceled round.
	res, err := a.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 {
		t.Fatalf("want 1 report after the canceled round, got %d", len(res.Reports))
	}
}

// TestWarmSessionCancellation covers the warm-path checkpoints the cold
// tests above cannot reach: a canceled build observes the summary-store
// fixpoint's context check, a canceled recheck observes the verdict
// replay path's, and after both aborts the session still produces output
// byte-identical to its cold run.
func TestWarmSessionCancellation(t *testing.T) {
	sess := NewSession()
	cold, err := sess.Analyze(ctxTestProgram, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := sess.AnalyzeContext(ctx, ctxTestProgram, DefaultOptions()); !errors.Is(err, ErrCanceled) {
		t.Fatalf("warm build: want ErrCanceled, got %v", err)
	}
	a, err := sess.NewAnalysis(ctxTestProgram, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.CheckContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("warm recheck: want ErrCanceled, got %v", err)
	}

	warm, err := sess.Analyze(ctxTestProgram, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Reports) != len(cold.Reports) {
		t.Fatalf("canceled rounds changed the warm output: cold %d reports, warm %d",
			len(cold.Reports), len(warm.Reports))
	}
	for i := range warm.Reports {
		if warm.Reports[i].String() != cold.Reports[i].String() {
			t.Errorf("report %d differs after canceled rounds:\ncold: %s\nwarm: %s",
				i, cold.Reports[i], warm.Reports[i])
		}
	}
}

// TestAnalyzeContextBackground asserts the context-free path is unchanged:
// Analyze delegates to AnalyzeContext with context.Background().
func TestAnalyzeContextBackground(t *testing.T) {
	res, err := AnalyzeContext(context.Background(), ctxTestProgram, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 || res.Reports[0].Kind != CheckUseAfterFree {
		t.Fatalf("unexpected reports: %+v", res.Reports)
	}
}

// TestSubmissionKeyCanonicalization pins the key contract SubmissionKey
// promises to the result cache.
func TestSubmissionKeyCanonicalization(t *testing.T) {
	opt := DefaultOptions()
	base := SubmissionKey(ctxTestProgram, opt)

	// Representation-only edits share the key.
	reformatted := stringsReplaceLineEndings(ctxTestProgram)
	if SubmissionKey(reformatted, opt) != base {
		t.Error("CRLF + trailing-blank canonicalization should not change the key")
	}

	// Workers never changes the output, so it never changes the key.
	w := opt
	w.Workers = 7
	if SubmissionKey(ctxTestProgram, w) != base {
		t.Error("Workers must be excluded from the key")
	}

	// A nil checker list is the explicit default set, in any order.
	c1, c2 := opt, opt
	c1.Checkers = AllCheckers()
	c2.Checkers = []string{CheckTaintLeak, CheckNullDeref, CheckDoubleFree, CheckUseAfterFree}
	if SubmissionKey(ctxTestProgram, c1) != base || SubmissionKey(ctxTestProgram, c2) != base {
		t.Error("nil / default / reordered checker lists should share the key")
	}

	// Semantics-bearing options split the key.
	for name, mut := range map[string]func(*Options){
		"source":       nil,
		"unroll":       func(o *Options) { o.UnrollDepth = 3 },
		"enable-mhp":   func(o *Options) { o.EnableMHP = false },
		"memory model": func(o *Options) { o.MemoryModel = "tso" },
		"checkers":     func(o *Options) { o.Checkers = []string{CheckTaintLeak} },
		"cube":         func(o *Options) { o.CubeAndConquer = true },
		"conflicts":    func(o *Options) { o.MaxConflicts = 7 },
	} {
		o := opt
		src := ctxTestProgram
		if mut == nil {
			src += "\nfunc extra() { z = malloc(); }\n"
		} else {
			mut(&o)
		}
		if SubmissionKey(src, o) == base {
			t.Errorf("%s change should change the key", name)
		}
	}
}

func stringsReplaceLineEndings(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += line + "   \r\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(lines, cur)
}
